//! The trace engine: non-stationary request schedules, replayable and
//! byte-identical per seed.
//!
//! A [`Trace`] is an ordered request stream per epoch: `epochs[e]` lists
//! the service ids requested during epoch `e`, in arrival order (order
//! matters — recency-based eviction policies see it). Three modulations
//! compose over a Zipf base popularity:
//!
//! * **diurnal** — per-epoch volume swings sinusoidally around the mean
//!   (same `1 + amplitude·sin` shape as `mec-workload`'s churn curve);
//! * **flash crowd** — for a bounded window, a handful of cold services
//!   get their sampling weight multiplied by a large boost;
//! * **drift** — every `interval` epochs the popularity ranking rotates,
//!   so the hot set wanders over the trace instead of staying fixed.
//!
//! Schedules serialize to a canonical text form ([`Trace::schedule_text`])
//! so "same seed ⇒ byte-identical schedule" is a testable statement, and
//! parse back ([`Trace::parse_schedule`]) so a schedule generated once
//! can be replayed anywhere — the offline eviction harness in
//! `mec-baselines`, `sweepbench scenarios`, and `marketload --scenario`
//! all drive the same bytes.

use crate::popularity::{Mix, PopularityModel, Sampler};

/// Sinusoidal per-epoch volume modulation.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Full cycle length in epochs.
    pub period: usize,
    /// Peak deviation from the mean volume (0.75 = ±75 %).
    pub amplitude: f64,
}

/// A bounded surge of interest in a few previously-cold services.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// First epoch of the surge.
    pub start: usize,
    /// Surge length in epochs.
    pub duration: usize,
    /// How many of the coldest-ranked services flash.
    pub targets: usize,
    /// Sampling-weight multiplier applied to each target during the
    /// surge.
    pub boost: f64,
}

/// Gradual popularity drift: rotate the ranking every `interval` epochs.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Epochs between drift steps.
    pub interval: usize,
    /// Ranks rotated per step (see [`PopularityModel::rotate`]).
    pub shift: usize,
}

/// Everything that determines a trace. Two equal configs generate
/// byte-identical schedules.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Human-readable trace name (lands in reports and schedule text;
    /// must not contain whitespace).
    pub label: String,
    /// Service universe size; request ids are `0..services`.
    pub services: usize,
    /// Schedule length in epochs.
    pub epochs: usize,
    /// Mean requests per epoch before diurnal modulation.
    pub requests_per_epoch: usize,
    /// Zipf skew `s` (0 = uniform; 0.9 is the classic web default).
    pub zipf_exponent: f64,
    /// Optional volume modulation.
    pub diurnal: Option<Diurnal>,
    /// Optional flash crowd.
    pub flash: Option<FlashCrowd>,
    /// Optional popularity drift.
    pub drift: Option<Drift>,
    /// RNG seed; the sole source of randomness.
    pub seed: u64,
}

impl TraceConfig {
    /// A stationary Zipf config with no modulation.
    pub fn new(
        label: &str,
        services: usize,
        epochs: usize,
        requests_per_epoch: usize,
        seed: u64,
    ) -> TraceConfig {
        TraceConfig {
            label: label.to_string(),
            services,
            epochs,
            requests_per_epoch,
            zipf_exponent: 0.9,
            diurnal: None,
            flash: None,
            drift: None,
            seed,
        }
    }

    /// Adds a diurnal volume cycle.
    #[must_use]
    pub fn with_diurnal(mut self, period: usize, amplitude: f64) -> TraceConfig {
        self.diurnal = Some(Diurnal { period, amplitude });
        self
    }

    /// Adds a flash crowd window.
    #[must_use]
    pub fn with_flash(mut self, flash: FlashCrowd) -> TraceConfig {
        self.flash = Some(flash);
        self
    }

    /// Adds gradual popularity drift.
    #[must_use]
    pub fn with_drift(mut self, interval: usize, shift: usize) -> TraceConfig {
        self.drift = Some(Drift { interval, shift });
        self
    }

    /// Overrides the Zipf exponent.
    #[must_use]
    pub fn with_zipf_exponent(mut self, s: f64) -> TraceConfig {
        self.zipf_exponent = s;
        self
    }

    /// Generates the schedule. Deterministic: the same config always
    /// yields the same [`Trace`], byte for byte (see
    /// [`Trace::schedule_text`]).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (zero services/epochs/volume, a
    /// whitespace label, or a flash window bigger than the universe).
    pub fn generate(&self) -> Trace {
        assert!(self.services > 0, "trace '{}': zero services", self.label);
        assert!(self.epochs > 0, "trace '{}': zero epochs", self.label);
        assert!(
            self.requests_per_epoch > 0,
            "trace '{}': zero requests per epoch",
            self.label
        );
        assert!(
            !self.label.is_empty() && !self.label.contains(char::is_whitespace),
            "trace label '{}' must be non-empty with no whitespace",
            self.label
        );
        if let Some(f) = &self.flash {
            assert!(
                f.targets > 0 && f.targets <= self.services,
                "trace '{}': flash targets {} outside 1..={}",
                self.label,
                f.targets,
                self.services
            );
        }

        let mut mix = Mix::new(self.seed);
        let mut model = PopularityModel::new(self.services, self.zipf_exponent);
        let mut boost = vec![1.0; self.services];
        let mut flash_targets: Vec<u32> = Vec::new();
        let mut epochs = Vec::with_capacity(self.epochs);

        for e in 0..self.epochs {
            // Drift first: epoch e samples from the post-drift ranking.
            if let Some(d) = &self.drift {
                if d.interval > 0 && e > 0 && e % d.interval == 0 {
                    model.rotate(d.shift);
                }
            }
            // Flash window: targets are the coldest-ranked services at
            // the moment the surge starts (so the surge is a genuine
            // popularity inversion, not a boost of already-hot heads).
            if let Some(f) = &self.flash {
                let active = e >= f.start && e < f.start + f.duration;
                if active && flash_targets.is_empty() {
                    flash_targets = (self.services - f.targets..self.services)
                        .map(|k| model.service_at_rank(k))
                        .collect();
                    flash_targets.sort_unstable();
                }
                for b in boost.iter_mut() {
                    *b = 1.0;
                }
                if active {
                    for &t in &flash_targets {
                        boost[t as usize] = f.boost;
                    }
                }
            }
            let volume = self.epoch_volume(e);
            let sampler = Sampler::new(&model.service_weights(&boost));
            let mut requests = Vec::with_capacity(volume);
            for _ in 0..volume {
                requests.push(sampler.sample(&mut mix));
            }
            epochs.push(requests);
        }

        Trace {
            label: self.label.clone(),
            services: self.services,
            seed: self.seed,
            flash_targets,
            epochs,
        }
    }

    /// Request volume for epoch `e` after diurnal modulation (≥ 1).
    fn epoch_volume(&self, e: usize) -> usize {
        let base = self.requests_per_epoch as f64;
        let factor = match &self.diurnal {
            Some(d) if d.period > 0 => {
                let phase = e as f64 / d.period as f64 * std::f64::consts::TAU;
                1.0 + d.amplitude * phase.sin()
            }
            _ => 1.0,
        };
        ((base * factor).round() as usize).max(1)
    }
}

/// A generated request schedule: the replayable artifact every consumer
/// drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace name (from the config).
    pub label: String,
    /// Service universe size.
    pub services: usize,
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// Services boosted by the flash crowd (empty without one).
    pub flash_targets: Vec<u32>,
    /// `epochs[e]` = ordered service ids requested during epoch `e`.
    epochs: Vec<Vec<u32>>,
}

impl Trace {
    /// Number of epochs in the schedule.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The ordered request stream of epoch `e`.
    pub fn requests_in(&self, e: usize) -> &[u32] {
        &self.epochs[e]
    }

    /// Per-service request counts for epoch `e`.
    pub fn counts(&self, e: usize) -> Vec<u32> {
        let mut c = vec![0u32; self.services];
        for &svc in &self.epochs[e] {
            c[svc as usize] += 1;
        }
        c
    }

    /// Total requests across the whole schedule.
    pub fn total_requests(&self) -> u64 {
        self.epochs.iter().map(|e| e.len() as u64).sum()
    }

    /// Canonical text serialization: a header line followed by one
    /// space-separated line of service ids per epoch. Two traces are
    /// identical iff their schedule texts are byte-identical — this is
    /// the representation the determinism tests compare and the replay
    /// consumers parse.
    pub fn schedule_text(&self) -> String {
        let targets = if self.flash_targets.is_empty() {
            "-".to_string()
        } else {
            self.flash_targets
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut out = format!(
            "mec-scenario v1 label={} services={} seed={} epochs={} flash={}\n",
            self.label,
            self.services,
            self.seed,
            self.epochs.len(),
            targets
        );
        for epoch in &self.epochs {
            let line = epoch
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses a schedule previously produced by [`Trace::schedule_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_schedule(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty schedule")?;
        let mut label = None;
        let mut services = None;
        let mut seed = None;
        let mut epochs_declared = None;
        let mut flash_targets = Vec::new();
        let mut fields = header.split_whitespace();
        if fields.next() != Some("mec-scenario") || fields.next() != Some("v1") {
            return Err("not a mec-scenario v1 schedule".to_string());
        }
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed header field '{field}'"))?;
            match key {
                "label" => label = Some(value.to_string()),
                "services" => {
                    services = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("services: {e}"))?,
                    );
                }
                "seed" => seed = Some(value.parse::<u64>().map_err(|e| format!("seed: {e}"))?),
                "epochs" => {
                    epochs_declared =
                        Some(value.parse::<usize>().map_err(|e| format!("epochs: {e}"))?);
                }
                "flash" => {
                    if value != "-" {
                        for id in value.split(',') {
                            flash_targets
                                .push(id.parse::<u32>().map_err(|e| format!("flash id: {e}"))?);
                        }
                    }
                }
                _ => return Err(format!("unknown header key '{key}'")),
            }
        }
        let services = services.ok_or("header missing services")?;
        let mut epochs = Vec::new();
        for (k, line) in lines.enumerate() {
            let mut requests = Vec::new();
            for id in line.split_whitespace() {
                let id: u32 = id
                    .parse()
                    .map_err(|e| format!("epoch {k}: bad service id '{id}': {e}"))?;
                if id as usize >= services {
                    return Err(format!("epoch {k}: service id {id} >= universe {services}"));
                }
                requests.push(id);
            }
            epochs.push(requests);
        }
        if let Some(declared) = epochs_declared {
            if declared != epochs.len() {
                return Err(format!(
                    "header declares {declared} epochs but schedule has {}",
                    epochs.len()
                ));
            }
        }
        Ok(Trace {
            label: label.ok_or("header missing label")?,
            services,
            seed: seed.ok_or("header missing seed")?,
            flash_targets,
            epochs,
        })
    }
}

/// Validates a schedule: every id in range, epoch count and volumes
/// sane. Returns the peak epoch volume.
///
/// # Panics
///
/// Panics naming the offending epoch on the first violation.
pub fn validate_trace(trace: &Trace) -> usize {
    assert!(trace.services > 0, "trace '{}': zero services", trace.label);
    assert!(
        trace.epoch_count() > 0,
        "trace '{}': zero epochs",
        trace.label
    );
    let mut peak = 0;
    for e in 0..trace.epoch_count() {
        let reqs = trace.requests_in(e);
        assert!(
            !reqs.is_empty(),
            "trace '{}': epoch {e} has no requests",
            trace.label
        );
        for &svc in reqs {
            assert!(
                (svc as usize) < trace.services,
                "trace '{}': epoch {e} requests unknown service {svc}",
                trace.label
            );
        }
        peak = peak.max(reqs.len());
    }
    for &t in &trace.flash_targets {
        assert!(
            (t as usize) < trace.services,
            "trace '{}': flash target {t} outside the universe",
            trace.label
        );
    }
    peak
}

/// The three dynamic traces the scenario bench sweeps — one per
/// non-stationarity the paper's setting cares about:
///
/// 1. `zipf_diurnal` — stationary Zipf popularity, sinusoidal volume;
/// 2. `flash_crowd` — a mid-trace surge on the five coldest services
///    (weight ×50);
/// 3. `popularity_drift` — the ranking rotates by three every five
///    epochs, with a mild diurnal cycle on top.
///
/// All three share `services`, `epochs`, `requests_per_epoch`, and
/// derive their RNG streams from `seed` (offset per trace so the
/// schedules are independent).
pub fn standard_traces(
    services: usize,
    epochs: usize,
    requests_per_epoch: usize,
    seed: u64,
) -> Vec<Trace> {
    let flash = FlashCrowd {
        start: epochs / 3,
        duration: (epochs / 3).max(1),
        targets: 5.min(services),
        boost: 50.0,
    };
    vec![
        TraceConfig::new("zipf_diurnal", services, epochs, requests_per_epoch, seed)
            .with_diurnal(epochs.max(2) / 2, 0.75)
            .generate(),
        TraceConfig::new(
            "flash_crowd",
            services,
            epochs,
            requests_per_epoch,
            seed.wrapping_add(1),
        )
        .with_flash(flash)
        .generate(),
        TraceConfig::new(
            "popularity_drift",
            services,
            epochs,
            requests_per_epoch,
            seed.wrapping_add(2),
        )
        .with_drift(5, 3)
        .with_diurnal(epochs.max(2) / 2, 0.3)
        .generate(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TraceConfig {
        TraceConfig::new("t", 20, 12, 50, 9)
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = base().generate();
        let b = base().generate();
        assert_eq!(a.schedule_text(), b.schedule_text());
    }

    #[test]
    fn different_seeds_differ() {
        let a = base().generate();
        let mut cfg = base();
        cfg.seed = 10;
        let b = cfg.generate();
        assert_ne!(a.schedule_text(), b.schedule_text());
    }

    #[test]
    fn diurnal_modulates_volume() {
        let flat = base().generate();
        let wave = base().with_diurnal(12, 0.75).generate();
        let spread = |t: &Trace| {
            let sizes: Vec<usize> = (0..t.epoch_count())
                .map(|e| t.requests_in(e).len())
                .collect();
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap()
        };
        assert!(
            spread(&wave) > spread(&flat),
            "diurnal cycle had no effect on volume"
        );
    }

    #[test]
    fn flash_crowd_boosts_cold_targets() {
        let cfg = base().with_flash(FlashCrowd {
            start: 4,
            duration: 4,
            targets: 3,
            boost: 100.0,
        });
        let t = cfg.generate();
        assert_eq!(t.flash_targets.len(), 3);
        // Targets are cold (bottom-ranked) services.
        for &target in &t.flash_targets {
            assert!(target as usize >= t.services - 3);
        }
        let in_window: u32 = (4..8).map(|e| t.counts(e)).fold(0, |acc, c| {
            acc + t.flash_targets.iter().map(|&x| c[x as usize]).sum::<u32>()
        });
        let out_window: u32 = (0..4).map(|e| t.counts(e)).fold(0, |acc, c| {
            acc + t.flash_targets.iter().map(|&x| c[x as usize]).sum::<u32>()
        });
        assert!(
            in_window > 4 * out_window.max(1),
            "flash window did not dominate: {in_window} vs {out_window}"
        );
    }

    #[test]
    fn drift_moves_the_hot_set() {
        let cfg = TraceConfig::new("d", 20, 40, 200, 5).with_drift(5, 3);
        let t = cfg.generate();
        let top = |e: usize| {
            let c = t.counts(e);
            (0..c.len()).max_by_key(|&l| c[l]).unwrap()
        };
        assert_ne!(
            top(0),
            top(t.epoch_count() - 1),
            "ranking rotation never changed the most-requested service"
        );
    }

    #[test]
    fn schedule_text_round_trips() {
        let t = base()
            .with_flash(FlashCrowd {
                start: 2,
                duration: 3,
                targets: 2,
                boost: 25.0,
            })
            .generate();
        let parsed = Trace::parse_schedule(&t.schedule_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_rejects_out_of_range_ids() {
        let text = "mec-scenario v1 label=x services=3 seed=1 epochs=1 flash=-\n0 1 7\n";
        assert!(Trace::parse_schedule(text).is_err());
    }

    #[test]
    fn standard_traces_cover_the_three_dynamics() {
        let traces = standard_traces(30, 24, 100, 42);
        assert_eq!(traces.len(), 3);
        let labels: Vec<&str> = traces.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["zipf_diurnal", "flash_crowd", "popularity_drift"]);
        for t in &traces {
            assert!(validate_trace(t) > 0);
            assert_eq!(t.epoch_count(), 24);
        }
        assert!(!traces[1].flash_targets.is_empty());
    }

    #[test]
    fn validate_catches_malformed_ids() {
        let mut t = base().generate();
        t.epochs[3][0] = 99;
        let r = std::panic::catch_unwind(|| validate_trace(&t));
        assert!(r.is_err());
    }
}
