//! Determinism contract: the same config always generates a
//! byte-identical event schedule, across every knob combination.
//!
//! The unit tests inside `trace.rs` pin the fixed presets; these
//! property tests sweep random configs (universe size, volume, all
//! three modulations on and off) and assert the two invariants every
//! consumer relies on:
//!
//! * generate twice ⇒ identical `schedule_text` bytes;
//! * `schedule_text` → `parse_schedule` round-trips to an equal trace.

use mec_scenario::{validate_trace, FlashCrowd, Trace, TraceConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandCfg {
    services: usize,
    epochs: usize,
    volume: usize,
    zipf: f64,
    diurnal: Option<(usize, f64)>,
    flash: Option<(usize, usize, usize, f64)>,
    drift: Option<(usize, usize)>,
    seed: u64,
}

fn rand_cfg() -> impl Strategy<Value = RandCfg> {
    // The vendored proptest stand-in has no `option` combinator; each
    // modulation carries its own on/off flag instead.
    (
        2usize..40,
        1usize..25,
        1usize..80,
        0.0..2.0f64,
        (0u8..2, 1usize..20, 0.0..0.9f64),
        (0u8..2, 0usize..20, 1usize..10, 1usize..5, 2.0..100.0f64),
        (0u8..2, 1usize..8, 1usize..6),
        0u64..1_000_000_000,
    )
        .prop_map(
            |(services, epochs, volume, zipf, diurnal, flash, drift, seed)| RandCfg {
                services,
                epochs,
                volume,
                zipf,
                diurnal: (diurnal.0 == 1).then_some((diurnal.1, diurnal.2)),
                flash: (flash.0 == 1).then_some((flash.1, flash.2, flash.3, flash.4)),
                drift: (drift.0 == 1).then_some((drift.1, drift.2)),
                seed,
            },
        )
}

fn build(r: &RandCfg) -> TraceConfig {
    let mut cfg =
        TraceConfig::new("prop", r.services, r.epochs, r.volume, r.seed).with_zipf_exponent(r.zipf);
    if let Some((period, amplitude)) = r.diurnal {
        cfg = cfg.with_diurnal(period, amplitude);
    }
    if let Some((start, duration, targets, boost)) = r.flash {
        cfg = cfg.with_flash(FlashCrowd {
            start,
            duration,
            targets: targets.min(r.services),
            boost,
        });
    }
    if let Some((interval, shift)) = r.drift {
        cfg = cfg.with_drift(interval, shift);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_config_is_byte_identical(r in rand_cfg()) {
        let a = build(&r).generate();
        let b = build(&r).generate();
        prop_assert_eq!(a.schedule_text(), b.schedule_text());
    }

    #[test]
    fn schedule_round_trips_and_validates(r in rand_cfg()) {
        let t = build(&r).generate();
        let peak = validate_trace(&t);
        prop_assert!(peak >= 1);
        let parsed = Trace::parse_schedule(&t.schedule_text()).unwrap();
        prop_assert_eq!(&parsed, &t);
        // Re-serialization of the parse is also byte-identical.
        prop_assert_eq!(parsed.schedule_text(), t.schedule_text());
    }

    #[test]
    fn every_request_is_in_universe(r in rand_cfg()) {
        let t = build(&r).generate();
        for e in 0..t.epoch_count() {
            for &svc in t.requests_in(e) {
                prop_assert!((svc as usize) < t.services);
            }
        }
    }
}
