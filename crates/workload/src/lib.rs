//! Workload generation: the paper's Section IV-A parameters and seeded
//! market generators.
//!
//! * [`params`] — every experimental knob with the paper's defaults,
//! * [`generator`] — topology + params → [`generator::GeneratedMarket`],
//! * [`scenario`] — figure-ready presets (GT-ITM sweeps, AS1755 overlay).
//!
//! # Examples
//!
//! ```
//! use mec_workload::{gtitm_scenario, Params};
//!
//! let scenario = gtitm_scenario(100, &Params::paper().with_providers(20), 42);
//! assert_eq!(scenario.generated.market.provider_count(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod generator;
pub mod params;
pub mod scenario;

pub use churn::{generate_script, validate_script, ChurnConfig};
pub use generator::{GeneratedMarket, ProviderMeta};
pub use params::{Params, Range};
pub use scenario::{
    as1755_scenario, gtitm_scenario, Scenario, DEFAULT_SELFISH_FRACTION, FIG2_SIZES, FIG3_SIZE,
    SELFISH_FRACTIONS,
};
