//! Seeded market generation: topology + [`Params`] → [`GeneratedMarket`].
//!
//! Converts the paper's raw parameter draws into the cost model of
//! `mec-core`:
//!
//! * `C(CL_i)` = VMs per cloudlet; `B(CL_i)` = VMs × per-VM bandwidth.
//! * `c_l_ins` = VM instantiation fee + processing cost of the service's
//!   total request traffic (`proc_cost_per_gb × traffic_gb`).
//! * `c_{l,i}_bdw` = transmission cost of the consistency-update volume
//!   (10 % of the service data volume) priced by the cloudlet→home-DC
//!   distance.
//! * `remote_cost` = processing in the data center plus the wide-area
//!   transfer of all request traffic (with the remote delay penalty).
//! * `offload_cost(l, i)` = user→cloudlet transfer price of the request
//!   traffic; this is what the `OffloadCache`/`JoOffloadCache` baselines
//!   greedily optimize.

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::ProviderId;
use mec_topology::{CloudletId, DataCenterId, MecNetwork, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::params::Params;

/// Side information about one generated provider.
#[derive(Debug, Clone)]
pub struct ProviderMeta {
    /// Data center hosting the original service instance.
    pub home_dc: DataCenterId,
    /// Representative location of the provider's users.
    pub user_node: NodeId,
    /// Number of requests `r_l`.
    pub requests: u32,
    /// Total request traffic, GB.
    pub traffic_gb: f64,
    /// Service data volume, GB.
    pub data_gb: f64,
    /// Consistency-update volume, GB (`update_ratio × data_gb`).
    pub update_gb: f64,
    /// Sampled transmission price, $/GB.
    pub tx_cost_per_gb: f64,
    /// Sampled processing price, $/GB.
    pub proc_cost_per_gb: f64,
}

/// A market generated from a topology, plus the metadata the baselines and
/// the simulator need.
#[derive(Debug, Clone)]
pub struct GeneratedMarket {
    /// The game-theoretic market (see [`mec_core::Market`]).
    pub market: Market,
    /// Per-provider generation metadata.
    pub providers: Vec<ProviderMeta>,
    /// Row-major `providers × cloudlets` user→cloudlet offloading cost.
    offload: Vec<f64>,
    cloudlets: usize,
}

impl GeneratedMarket {
    /// User→cloudlet offloading cost for `(l, i)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn offload_cost(&self, l: ProviderId, i: CloudletId) -> f64 {
        assert!(l.index() < self.providers.len() && i.index() < self.cloudlets);
        self.offload[l.index() * self.cloudlets + i.index()]
    }

    /// Number of cloudlets in the generated market.
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets
    }
}

/// Generates a market on `net` with the given parameters and seed.
///
/// Deterministic: the same `(net, params, seed)` triple yields an identical
/// market.
///
/// # Panics
///
/// Panics if `net` has no cloudlets or no data centers.
pub fn generate(net: &MecNetwork, params: &Params, seed: u64) -> GeneratedMarket {
    assert!(net.cloudlet_count() > 0, "network has no cloudlets");
    assert!(net.data_center_count() > 0, "network has no data centers");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Market::builder();

    // Cloudlets.
    for _ in net.cloudlets() {
        let vms = params.vms_per_cloudlet.sample(&mut rng).round();
        let bw = vms * params.vm_bandwidth_mbps.sample(&mut rng);
        let alpha = params.alpha.sample(&mut rng);
        let beta = params.beta.sample(&mut rng);
        builder = builder.cloudlet(CloudletSpec::new(vms, bw, alpha, beta));
    }

    // Providers.
    let stub_nodes = {
        let s = net.topology().stub_nodes();
        if s.is_empty() {
            net.topology().graph.nodes().collect::<Vec<_>>()
        } else {
            s
        }
    };
    let mut metas = Vec::with_capacity(params.providers);
    let mut bandwidth_demands = Vec::with_capacity(params.providers);
    for _ in 0..params.providers {
        let home_dc = DataCenterId(rng.random_range(0..net.data_center_count()));
        let user_node = stub_nodes[rng.random_range(0..stub_nodes.len())];
        let requests = params.requests_per_service.sample(&mut rng).round() as u32;
        let traffic_gb = params.traffic_per_request_mb.sample(&mut rng) / 1024.0 * requests as f64;
        let data_gb = params.service_data_gb.sample(&mut rng);
        let update_gb = params.update_ratio * data_gb;
        let tx = params.tx_cost_per_gb.sample(&mut rng);
        let proc = params.proc_cost_per_gb.sample(&mut rng);

        let compute_demand = params.service_vms.sample(&mut rng);
        let bandwidth_demand = params.bandwidth_per_request_mbps.sample(&mut rng) * requests as f64;
        // Resource-proportional VM pricing: the fee scales with the VMs the
        // service occupies, plus the processing of its request traffic.
        let instantiation =
            params.instantiation_fee.sample(&mut rng) * compute_demand + proc * traffic_gb;
        let remote_cost = if params.allow_remote {
            let dist = net.node_dc_distance(user_node, home_dc);
            proc * traffic_gb
                + tx * traffic_gb
                    * (1.0 + params.distance_factor_per_ms * dist * params.remote_penalty)
        } else {
            f64::INFINITY
        };
        builder = builder.provider(ProviderSpec::new(
            compute_demand,
            bandwidth_demand,
            instantiation,
            remote_cost,
        ));
        bandwidth_demands.push(bandwidth_demand);
        metas.push(ProviderMeta {
            home_dc,
            user_node,
            requests,
            traffic_gb,
            data_gb,
            update_gb,
            tx_cost_per_gb: tx,
            proc_cost_per_gb: proc,
        });
    }

    // Update-cost matrix and offload matrix.
    let cl_count = net.cloudlet_count();
    let mut update = Vec::with_capacity(params.providers * cl_count);
    let mut offload = Vec::with_capacity(params.providers * cl_count);
    for (idx, meta) in metas.iter().enumerate() {
        // Bandwidth reservation at the cloudlet: resource-proportional.
        let bw_reservation = params.bandwidth_price_per_mbps * bandwidth_demands[idx];
        for i in net.cloudlets() {
            let d_dc = net.cloudlet_dc_distance(i, meta.home_dc);
            update.push(
                meta.tx_cost_per_gb * meta.update_gb * (1.0 + params.distance_factor_per_ms * d_dc)
                    + bw_reservation,
            );
            let d_user = net.node_cloudlet_distance(meta.user_node, i);
            offload.push(
                meta.tx_cost_per_gb
                    * meta.traffic_gb
                    * (1.0 + params.distance_factor_per_ms * d_user)
                    * 0.25, // edge links are cheap relative to wide-area
            );
        }
    }

    let market = builder.update_cost_matrix(update).build();
    GeneratedMarket {
        market,
        providers: metas,
        offload,
        cloudlets: cl_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::gtitm::{generate as gen_topo, GtItmConfig};
    use mec_topology::PlacementConfig;

    fn net(size: usize, seed: u64) -> MecNetwork {
        MecNetwork::place(
            gen_topo(&GtItmConfig::for_size(size, seed)),
            &PlacementConfig::default(),
        )
    }

    #[test]
    fn generates_requested_counts() {
        let n = net(100, 1);
        let g = generate(&n, &Params::paper().with_providers(20), 7);
        assert_eq!(g.market.provider_count(), 20);
        assert_eq!(g.market.cloudlet_count(), n.cloudlet_count());
        assert_eq!(g.providers.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let n = net(80, 2);
        let a = generate(&n, &Params::paper().with_providers(10), 3);
        let b = generate(&n, &Params::paper().with_providers(10), 3);
        for l in a.market.providers() {
            assert_eq!(
                a.market.provider(l).remote_cost,
                b.market.provider(l).remote_cost
            );
        }
    }

    #[test]
    fn capacities_exceed_single_service_demand() {
        // Lemma 1's standing assumption must hold under default parameters.
        let n = net(120, 3);
        let g = generate(&n, &Params::paper().with_providers(30), 5);
        let a_max = g.market.max_compute_demand();
        let b_max = g.market.max_bandwidth_demand();
        for i in g.market.cloudlets() {
            let c = g.market.cloudlet(i);
            assert!(
                c.compute_capacity >= a_max,
                "C_i {} < a_max {a_max}",
                c.compute_capacity
            );
            assert!(
                c.bandwidth_capacity >= b_max,
                "B_i {} < b_max {b_max}",
                c.bandwidth_capacity
            );
        }
    }

    #[test]
    fn update_cost_grows_with_dc_distance() {
        let n = net(150, 4);
        let g = generate(&n, &Params::paper().with_providers(15), 6);
        // For each provider, the farthest cloudlet costs at least as much
        // as the nearest one.
        for (idx, meta) in g.providers.iter().enumerate() {
            let l = ProviderId(idx);
            let near = n
                .cloudlets()
                .min_by(|&a, &b| {
                    n.cloudlet_dc_distance(a, meta.home_dc)
                        .partial_cmp(&n.cloudlet_dc_distance(b, meta.home_dc))
                        .unwrap()
                })
                .unwrap();
            let far = n
                .cloudlets()
                .max_by(|&a, &b| {
                    n.cloudlet_dc_distance(a, meta.home_dc)
                        .partial_cmp(&n.cloudlet_dc_distance(b, meta.home_dc))
                        .unwrap()
                })
                .unwrap();
            assert!(g.market.update_cost(l, near) <= g.market.update_cost(l, far) + 1e-12);
        }
    }

    #[test]
    fn update_volume_is_ten_percent() {
        let n = net(90, 5);
        let g = generate(&n, &Params::paper().with_providers(10), 8);
        for meta in &g.providers {
            assert!((meta.update_gb - 0.1 * meta.data_gb).abs() < 1e-12);
        }
    }

    #[test]
    fn remote_forbidden_when_disabled() {
        let n = net(90, 6);
        let mut p = Params::paper().with_providers(5);
        p.allow_remote = false;
        let g = generate(&n, &p, 9);
        for l in g.market.providers() {
            assert!(!g.market.provider(l).can_stay_remote());
        }
    }

    #[test]
    fn offload_cost_accessible_and_positive() {
        let n = net(100, 7);
        let g = generate(&n, &Params::paper().with_providers(8), 10);
        for l in g.market.providers() {
            for i in g.market.cloudlets() {
                assert!(g.offload_cost(l, i) > 0.0);
            }
        }
    }

    #[test]
    fn remote_cost_exceeds_typical_flat_cost() {
        // Caching should usually be attractive at low congestion —
        // otherwise the whole market degenerates to remote serving.
        let n = net(100, 8);
        let g = generate(&n, &Params::paper().with_providers(30), 11);
        let mut cheaper = 0;
        for l in g.market.providers() {
            let best_flat = g
                .market
                .cloudlets()
                .map(|i| g.market.flat_cost(l, i))
                .fold(f64::INFINITY, f64::min);
            if best_flat < g.market.provider(l).remote_cost {
                cheaper += 1;
            }
        }
        assert!(
            cheaper * 2 > g.market.provider_count(),
            "only {cheaper}/30 providers prefer caching at congestion 1"
        );
    }
}
