//! The paper's experiment parameters (Section IV-A), as a config type.
//!
//! > "The number of VMs provided by each cloudlet/data center is randomly
//! > generated from [15, 30]. The bandwidth capacity of each VM is drawn
//! > from the range of [10Mbps, 100Mbps]. The costs of transmitting and
//! > processing 1 GB of data are set within [$0.05, $0.12] and
//! > [$0.15, $0.22], respectively. The traffic volume of each request is
//! > randomly drawn from [10, 200] Megabytes. The data volume of each
//! > service caching request is varied from 1 GB to 5 GB. The values for
//! > α_i and β_i of each cloudlet are randomly drawn in the range of [0, 1].
//! > The data volume of consistency updating ... is set to 10 % of the
//! > service's data volume."

/// An inclusive uniform sampling range.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi}]"
        );
        Range { lo, hi }
    }

    /// Midpoint of the range.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Samples uniformly from the range with the given RNG.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rand::RngExt::random_range(rng, self.lo..self.hi)
        }
    }
}

/// Full parameter set for generating a market from a topology.
///
/// Defaults reproduce Section IV-A. Every figure's sweep mutates exactly one
/// field of this struct.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Params {
    /// Number of network service providers `|N|` (paper: 100).
    pub providers: usize,
    /// VMs per cloudlet — the computing capacity `C(CL_i)` (paper: [15, 30]).
    pub vms_per_cloudlet: Range,
    /// Per-VM bandwidth in Mbps; cloudlet bandwidth capacity `B(CL_i)` is
    /// `VMs × per-VM bandwidth` (paper: [10, 100] Mbps).
    pub vm_bandwidth_mbps: Range,
    /// Cost of transmitting 1 GB, dollars (paper: [0.05, 0.12]).
    pub tx_cost_per_gb: Range,
    /// Cost of processing 1 GB, dollars (paper: [0.15, 0.22]).
    pub proc_cost_per_gb: Range,
    /// Traffic volume per request, MB (paper: [10, 200]).
    pub traffic_per_request_mb: Range,
    /// Requests per service `r_l` (paper does not pin this down; sized so
    /// that capacities comfortably exceed single-service demands — Lemma 1's
    /// standing assumption).
    pub requests_per_service: Range,
    /// Service data volume, GB (paper: [1, 5]).
    pub service_data_gb: Range,
    /// Computing demand of one service in VM units `a_l · r_l`
    /// (scaled so `C_i ≫ a_l`; see Lemma 1).
    pub service_vms: Range,
    /// Congestion coefficients `α_i` (paper: [0, 1]).
    pub alpha: Range,
    /// Congestion coefficients `β_i` (paper: [0, 1]).
    pub beta: Range,
    /// Update volume as a fraction of the service data volume (paper: 0.10).
    pub update_ratio: f64,
    /// Bandwidth each service reserves per request, Mbps (`b_l`).
    pub bandwidth_per_request_mbps: Range,
    /// VM instantiation fee per *VM unit* of the cached service, dollars —
    /// cloud pricing is resource-proportional ("the costs of using VMs are
    /// due to the usage of both computing and bandwidth resources").
    pub instantiation_fee: Range,
    /// Bandwidth-reservation price per Mbps reserved at a cloudlet,
    /// dollars (part of `c_{l,i}_bdw`).
    pub bandwidth_price_per_mbps: f64,
    /// Multiplier converting a physical-path latency (ms) into a relative
    /// distance factor for wide-area transfer pricing.
    pub distance_factor_per_ms: f64,
    /// Extra delay-penalty factor applied to remote (data-center) serving,
    /// reflecting the "hundreds of milliseconds" core-network detour the
    /// introduction motivates.
    pub remote_penalty: f64,
    /// Whether providers may refuse to cache and stay remote.
    pub allow_remote: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            providers: 100,
            vms_per_cloudlet: Range::new(15.0, 30.0),
            vm_bandwidth_mbps: Range::new(10.0, 100.0),
            tx_cost_per_gb: Range::new(0.05, 0.12),
            proc_cost_per_gb: Range::new(0.15, 0.22),
            traffic_per_request_mb: Range::new(10.0, 200.0),
            requests_per_service: Range::new(20.0, 60.0),
            service_data_gb: Range::new(1.0, 5.0),
            service_vms: Range::new(1.0, 4.0),
            alpha: Range::new(0.0, 1.0),
            beta: Range::new(0.0, 1.0),
            update_ratio: 0.10,
            bandwidth_per_request_mbps: Range::new(0.2, 0.8),
            instantiation_fee: Range::new(0.35, 0.7),
            bandwidth_price_per_mbps: 0.02,
            distance_factor_per_ms: 0.05,
            remote_penalty: 10.0,
            allow_remote: true,
        }
    }
}

impl Params {
    /// Paper defaults (Section IV-A).
    pub fn paper() -> Self {
        Params::default()
    }

    /// Returns a copy with a different provider count.
    pub fn with_providers(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one provider");
        self.providers = n;
        self
    }

    /// Returns a copy with the update ratio replaced (Fig. 6d sweep).
    pub fn with_update_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
        self.update_ratio = ratio;
        self
    }

    /// Returns a copy with the service compute-demand range scaled so its
    /// maximum is `a_max` VM units (Fig. 7a sweep).
    pub fn with_max_service_vms(mut self, a_max: f64) -> Self {
        assert!(a_max > 0.0, "a_max must be positive");
        self.service_vms = Range::new((a_max / 4.0).min(1.0), a_max);
        self
    }

    /// Returns a copy with the per-request bandwidth range scaled so the
    /// maximum total bandwidth demand grows with `factor` (Fig. 7b sweep).
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "factor must be positive");
        self.bandwidth_per_request_mbps = Range::new(
            self.bandwidth_per_request_mbps.lo * factor,
            self.bandwidth_per_request_mbps.hi * factor,
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_paper() {
        let p = Params::paper();
        assert_eq!(p.providers, 100);
        assert_eq!(p.vms_per_cloudlet, Range::new(15.0, 30.0));
        assert_eq!(p.tx_cost_per_gb, Range::new(0.05, 0.12));
        assert_eq!(p.proc_cost_per_gb, Range::new(0.15, 0.22));
        assert_eq!(p.traffic_per_request_mb, Range::new(10.0, 200.0));
        assert_eq!(p.service_data_gb, Range::new(1.0, 5.0));
        assert_approx_eq!(p.update_ratio, 0.10, 1e-12);
    }

    #[test]
    fn range_sampling_within_bounds() {
        let r = Range::new(2.0, 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = r.sample(&mut rng);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_range_returns_constant() {
        let r = Range::new(3.0, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_approx_eq!(r.sample(&mut rng), 3.0, 1e-12);
        assert_approx_eq!(r.mid(), 3.0, 1e-12);
    }

    #[test]
    fn sweep_helpers() {
        let p = Params::paper().with_providers(50);
        assert_eq!(p.providers, 50);
        let p = p.with_update_ratio(0.4);
        assert_approx_eq!(p.update_ratio, 0.4, 1e-12);
        let p = p.with_max_service_vms(8.0);
        assert_approx_eq!(p.service_vms.hi, 8.0, 1e-12);
        let p = p.with_bandwidth_scale(2.0);
        assert!((p.bandwidth_per_request_mbps.lo - 0.4).abs() < 1e-12);
    }

    #[test]
    fn params_are_serde_data_structures() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Range>();
        assert_serde::<Params>();
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn rejects_inverted_range() {
        let _ = Range::new(5.0, 2.0);
    }
}
