//! Churn-script generation: provider arrival/departure schedules.
//!
//! Drives the market-churn simulation (`mec_core::dynamics`) with
//! realistic temporal patterns: a launch ramp, steady-state turnover, and
//! an optional diurnal intensity curve (caching demand peaks in the
//! evening for consumer VR/AR — the paper's motivating workloads).

use mec_core::dynamics::ChurnEvent;
use mec_core::ProviderId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Configuration of [`generate_script`].
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total epochs to script.
    pub epochs: usize,
    /// Epochs of pure ramp-up at the start (arrivals only).
    pub ramp_epochs: usize,
    /// Arrivals per ramp epoch.
    pub ramp_arrivals: usize,
    /// Mean turnover (arrivals ≈ departures) per steady epoch.
    pub steady_turnover: usize,
    /// Modulate the steady-state turnover with a sinusoidal day curve
    /// of this period (in epochs); `None` keeps it flat.
    pub diurnal_period: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            epochs: 20,
            ramp_epochs: 5,
            ramp_arrivals: 8,
            steady_turnover: 4,
            diurnal_period: None,
            seed: 0,
        }
    }
}

/// Generates a valid churn script over a universe of `providers` ids:
/// no provider arrives while active or departs while inactive, and the
/// active set never exceeds the universe.
///
/// # Panics
///
/// Panics if `providers == 0` or the ramp would overflow the universe.
pub fn generate_script(providers: usize, config: &ChurnConfig) -> Vec<ChurnEvent> {
    assert!(providers > 0, "need a provider universe");
    assert!(
        config.ramp_epochs * config.ramp_arrivals <= providers,
        "ramp ({} x {}) exceeds the {providers}-provider universe",
        config.ramp_epochs,
        config.ramp_arrivals
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut inactive: Vec<ProviderId> = (0..providers).map(ProviderId).collect();
    let mut active: Vec<ProviderId> = Vec::new();
    let mut script = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        let intensity = match config.diurnal_period {
            Some(period) if period > 0 => {
                let phase = epoch as f64 / period as f64 * std::f64::consts::TAU;
                1.0 + 0.75 * phase.sin()
            }
            _ => 1.0,
        };
        let (n_arr, n_dep) = if epoch < config.ramp_epochs {
            (config.ramp_arrivals, 0)
        } else {
            let base = (config.steady_turnover as f64 * intensity).round() as usize;
            let jitter = if base > 0 {
                rng.random_range(0..=base.min(2))
            } else {
                0
            };
            (base + jitter, base)
        };
        inactive.shuffle(&mut rng);
        active.shuffle(&mut rng);
        let arrivals: Vec<ProviderId> = inactive.drain(..n_arr.min(inactive.len())).collect();
        let departures: Vec<ProviderId> = active.drain(..n_dep.min(active.len())).collect();
        active.extend(arrivals.iter().copied());
        inactive.extend(departures.iter().copied());
        script.push(ChurnEvent {
            arrivals,
            departures,
        });
    }
    script
}

/// Validates a script against a universe: every arrival targets an
/// inactive provider and every departure an active one. Returns the peak
/// active-set size.
///
/// # Panics
///
/// Panics on the first inconsistency, naming the epoch.
pub fn validate_script(providers: usize, script: &[ChurnEvent]) -> usize {
    let mut active = vec![false; providers];
    let mut peak = 0;
    for (epoch, e) in script.iter().enumerate() {
        for d in &e.departures {
            assert!(
                active[d.index()],
                "epoch {epoch}: departure of inactive {d}"
            );
            active[d.index()] = false;
        }
        for a in &e.arrivals {
            assert!(!active[a.index()], "epoch {epoch}: double arrival of {a}");
            active[a.index()] = true;
        }
        peak = peak.max(active.iter().filter(|x| **x).count());
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_valid() {
        let script = generate_script(60, &ChurnConfig::default());
        assert_eq!(script.len(), 20);
        let peak = validate_script(60, &script);
        assert!(peak >= 5 * 8, "ramp never materialized (peak {peak})");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_script(40, &ChurnConfig::default());
        let b = generate_script(40, &ChurnConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrivals, y.arrivals);
            assert_eq!(x.departures, y.departures);
        }
    }

    #[test]
    fn diurnal_modulates_turnover() {
        let flat = generate_script(
            200,
            &ChurnConfig {
                epochs: 40,
                diurnal_period: None,
                seed: 3,
                ..ChurnConfig::default()
            },
        );
        let wave = generate_script(
            200,
            &ChurnConfig {
                epochs: 40,
                diurnal_period: Some(10),
                seed: 3,
                ..ChurnConfig::default()
            },
        );
        validate_script(200, &flat);
        validate_script(200, &wave);
        let spread = |s: &[ChurnEvent]| {
            let sizes: Vec<usize> = s.iter().skip(5).map(|e| e.arrivals.len()).collect();
            *sizes.iter().max().unwrap() as i64 - *sizes.iter().min().unwrap() as i64
        };
        assert!(spread(&wave) > spread(&flat), "diurnal curve had no effect");
    }

    #[test]
    fn script_feeds_churn_simulation() {
        use mec_core::dynamics::{ChurnSimulation, ReplanStrategy};
        use mec_core::lcf::LcfConfig;
        let s = crate::gtitm_scenario(100, &crate::Params::paper().with_providers(30), 1);
        let script = generate_script(
            30,
            &ChurnConfig {
                epochs: 8,
                ramp_epochs: 3,
                ramp_arrivals: 6,
                steady_turnover: 3,
                diurnal_period: Some(6),
                seed: 1,
            },
        );
        let mut sim = ChurnSimulation::new(
            &s.generated.market,
            ReplanStrategy::Incremental,
            LcfConfig::new(0.7),
        );
        for e in &script {
            let rep = sim.step(e).unwrap();
            assert!(rep.social_cost >= 0.0);
        }
        assert!(sim.profile().is_feasible(&s.generated.market));
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn overlong_ramp_rejected() {
        let _ = generate_script(
            10,
            &ChurnConfig {
                ramp_epochs: 5,
                ramp_arrivals: 8,
                ..ChurnConfig::default()
            },
        );
    }
}
