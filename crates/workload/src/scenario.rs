//! Ready-made experiment scenarios matching the paper's figures.

use mec_topology::gtitm::{generate as generate_topology, GtItmConfig};
use mec_topology::zoo::as1755;
use mec_topology::{MecNetwork, PlacementConfig};

use crate::generator::{generate, GeneratedMarket};
use crate::params::Params;

/// The GT-ITM network sizes swept in Fig. 2.
pub const FIG2_SIZES: &[usize] = &[50, 100, 150, 200, 250, 300, 350, 400];

/// The network size fixed in Fig. 3.
pub const FIG3_SIZE: usize = 250;

/// The `(1 − ξ)` values swept in Figs. 3 and 6(a).
pub const SELFISH_FRACTIONS: &[f64] = &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The default selfish fraction `(1 − ξ) = 0.3` (Figs. 2 and 5).
pub const DEFAULT_SELFISH_FRACTION: f64 = 0.3;

/// A fully-generated experiment scenario: the placed network plus the
/// generated market.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The two-tiered MEC network.
    pub net: MecNetwork,
    /// The generated market and its metadata.
    pub generated: GeneratedMarket,
    /// Human-readable label for tables ("gt-itm-250", "as1755", ...).
    pub label: String,
}

/// Builds a GT-ITM scenario of the given size (Figs. 2–3).
pub fn gtitm_scenario(size: usize, params: &Params, seed: u64) -> Scenario {
    let topo = generate_topology(&GtItmConfig::for_size(size, seed));
    let label = topo.name.clone();
    let net = MecNetwork::place(
        topo,
        &PlacementConfig {
            seed,
            ..PlacementConfig::default()
        },
    );
    let generated = generate(&net, params, seed.wrapping_add(0x9E37_79B9));
    Scenario {
        net,
        generated,
        label,
    }
}

/// Builds a flat Waxman scenario of the given size (topology-robustness
/// ablation; GT-ITM's other model).
pub fn waxman_scenario(size: usize, params: &Params, seed: u64) -> Scenario {
    let topo =
        mec_topology::waxman::generate(&mec_topology::waxman::WaxmanConfig::for_size(size, seed));
    let label = topo.name.clone();
    let net = MecNetwork::place(
        topo,
        &PlacementConfig {
            seed,
            ..PlacementConfig::default()
        },
    );
    let generated = generate(&net, params, seed.wrapping_add(0x2545_F491));
    Scenario {
        net,
        generated,
        label,
    }
}

/// Builds the AS1755 testbed-overlay scenario (Figs. 5–7).
pub fn as1755_scenario(params: &Params, seed: u64) -> Scenario {
    let topo = as1755();
    let label = topo.name.clone();
    let net = MecNetwork::place(
        topo,
        &PlacementConfig {
            seed,
            ..PlacementConfig::default()
        },
    );
    let generated = generate(&net, params, seed.wrapping_add(0x517C_C1B7));
    Scenario {
        net,
        generated,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_sizes_match_paper() {
        assert_eq!(FIG2_SIZES.first(), Some(&50));
        assert_eq!(FIG2_SIZES.last(), Some(&400));
        assert_eq!(FIG3_SIZE, 250);
    }

    #[test]
    fn gtitm_scenario_builds() {
        let s = gtitm_scenario(100, &Params::paper().with_providers(20), 1);
        assert_eq!(s.net.topology().graph.node_count(), 100);
        assert_eq!(s.generated.market.provider_count(), 20);
        assert_eq!(s.label, "gt-itm-100");
    }

    #[test]
    fn as1755_scenario_builds() {
        let s = as1755_scenario(&Params::paper().with_providers(15), 2);
        assert_eq!(s.net.topology().graph.node_count(), 87);
        assert_eq!(s.label, "as1755");
    }

    #[test]
    fn waxman_scenario_builds() {
        let s = waxman_scenario(90, &Params::paper().with_providers(12), 4);
        assert_eq!(s.net.topology().graph.node_count(), 90);
        assert_eq!(s.generated.market.provider_count(), 12);
        assert_eq!(s.label, "waxman-90");
    }

    #[test]
    fn scenarios_deterministic() {
        let a = gtitm_scenario(80, &Params::paper().with_providers(10), 5);
        let b = gtitm_scenario(80, &Params::paper().with_providers(10), 5);
        for l in a.generated.market.providers() {
            assert_eq!(
                a.generated.market.provider(l).remote_cost,
                b.generated.market.provider(l).remote_cost
            );
        }
    }
}
