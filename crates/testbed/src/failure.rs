//! Switch-failure drills on the testbed underlay.
//!
//! The paper wires the underlay so that "network data can still be
//! transmitted if one switch is down". This module exercises that claim:
//! fail one switch, migrate the OVS nodes (and their VMs) hosted on the
//! orphaned server to surviving servers, rebuild the VXLAN tunnels over the
//! degraded fabric, and measure the latency inflation the overlay suffers.

use crate::overlay::Overlay;
use crate::underlay::{ServerId, SwitchId, Underlay};

/// Outcome of failing one switch.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The failed switch.
    pub failed: SwitchId,
    /// `true` if the surviving fabric stayed connected (paper requirement).
    pub fabric_survives: bool,
    /// OVS nodes migrated off the orphaned server.
    pub migrated_nodes: usize,
    /// Mean VXLAN tunnel latency before the failure, ms.
    pub mean_tunnel_ms_before: f64,
    /// Mean VXLAN tunnel latency after migration + re-routing, ms.
    pub mean_tunnel_ms_after: f64,
    /// Tunnels whose underlay path changed (re-routed or re-homed).
    pub rerouted_tunnels: usize,
}

impl FailureReport {
    /// Relative latency inflation caused by the failure.
    pub fn latency_inflation(&self) -> f64 {
        self.mean_tunnel_ms_after / self.mean_tunnel_ms_before
    }
}

/// Fails `down` on the given underlay/overlay pair and reports the damage.
///
/// OVS nodes hosted on the server attached to the failed switch are
/// migrated round-robin to the surviving servers (VM live-migration in the
/// real testbed); every tunnel latency is then recomputed over the
/// degraded fabric.
///
/// # Panics
///
/// Panics if `down` is out of range.
pub fn fail_switch(underlay: &Underlay, overlay: &Overlay, down: SwitchId) -> FailureReport {
    assert!(down.0 < underlay.switch_count(), "switch out of range");
    let fabric_survives = underlay.survives_failure(down);
    let topo = overlay.topology();
    let n = topo.graph.node_count();

    // Re-home nodes whose server hangs off the failed switch.
    let survivors: Vec<ServerId> = (0..underlay.server_count())
        .map(ServerId)
        .filter(|s| underlay.server(*s).attached_to != down)
        .collect();
    let mut host_of: Vec<ServerId> = (0..n).map(|k| overlay.host_of(k.into())).collect();
    let mut migrated = 0;
    for h in host_of.iter_mut() {
        if underlay.server(*h).attached_to == down {
            *h = survivors[migrated % survivors.len()];
            migrated += 1;
        }
    }

    // Recompute tunnel latencies over the degraded fabric.
    let mut before_total = 0.0;
    let mut after_total = 0.0;
    let mut rerouted = 0;
    let mut count = 0;
    for (tunnel, edge) in overlay.tunnels().iter().zip(topo.graph.edges()) {
        before_total += tunnel.latency_ms;
        let ha = host_of[edge.a.index()];
        let hb = host_of[edge.b.index()];
        let under_us = underlay
            .server_path_latency_us_with_failure(ha, hb, down)
            .expect("survivor-to-survivor path must exist in a 1-failure-tolerant fabric");
        let after = edge.weight + under_us / 1000.0;
        after_total += after;
        if (after - tunnel.latency_ms).abs() > 1e-12 {
            rerouted += 1;
        }
        count += 1;
    }

    FailureReport {
        failed: down,
        fabric_survives,
        migrated_nodes: migrated,
        mean_tunnel_ms_before: before_total / count as f64,
        mean_tunnel_ms_after: after_total / count as f64,
        rerouted_tunnels: rerouted,
    }
}

/// Runs the drill for every switch in turn.
pub fn drill_all(underlay: &Underlay, overlay: &Overlay) -> Vec<FailureReport> {
    (0..underlay.switch_count())
        .map(|k| fail_switch(underlay, overlay, SwitchId(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Underlay, Overlay) {
        let u = Underlay::paper_testbed();
        let o = Overlay::build(&u);
        (u, o)
    }

    #[test]
    fn every_single_failure_is_survivable() {
        let (u, o) = setup();
        for rep in drill_all(&u, &o) {
            assert!(rep.fabric_survives, "switch {:?} is a SPOF", rep.failed);
        }
    }

    #[test]
    fn orphaned_nodes_are_migrated() {
        let (u, o) = setup();
        for rep in drill_all(&u, &o) {
            // Each server hosts ~87/5 nodes; failing its switch must
            // migrate all of them.
            assert!(
                rep.migrated_nodes >= 87 / 5,
                "switch {:?} migrated only {}",
                rep.failed,
                rep.migrated_nodes
            );
        }
    }

    #[test]
    fn failure_inflates_latency_but_modestly() {
        let (u, o) = setup();
        for rep in drill_all(&u, &o) {
            let infl = rep.latency_inflation();
            // Migration may co-locate tunnel endpoints (one switch instead
            // of a multi-hop path), so the mean can dip a hair below 1.
            assert!(infl > 0.97, "implausible speed-up {infl}");
            // The underlay contributes microseconds; inflation stays tiny.
            assert!(infl < 1.05, "implausible inflation {infl}");
        }
    }

    #[test]
    fn some_tunnels_reroute() {
        let (u, o) = setup();
        let reports = drill_all(&u, &o);
        assert!(
            reports.iter().any(|r| r.rerouted_tunnels > 0),
            "no tunnel ever rerouted across all failures"
        );
    }

    #[test]
    fn deterministic() {
        let (u, o) = setup();
        let a = fail_switch(&u, &o, SwitchId(2));
        let b = fail_switch(&u, &o, SwitchId(2));
        assert_eq!(a.migrated_nodes, b.migrated_nodes);
        assert_eq!(a.mean_tunnel_ms_after, b.mean_tunnel_ms_after);
    }
}
