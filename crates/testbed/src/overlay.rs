//! The virtual overlay: OVS nodes and VMs on the AS1755 topology, carried
//! by VXLAN tunnels over the physical underlay (Fig. 4a).
//!
//! Every AS1755 router becomes an Open vSwitch instance pinned to one of
//! the five servers (round-robin). Each overlay link becomes a VXLAN tunnel
//! whose latency is the AS1755 link latency plus the underlay forwarding
//! path between the two hosting servers (µs-scale switch hops — small but
//! real, and visible in the measured path latencies).

use mec_topology::zoo::as1755;
use mec_topology::{NodeId, Topology};

use crate::underlay::{ServerId, Underlay};

/// A VXLAN tunnel realizing one overlay link.
#[derive(Debug, Clone, Copy)]
pub struct VxlanTunnel {
    /// Overlay endpoint A.
    pub a: NodeId,
    /// Overlay endpoint B.
    pub b: NodeId,
    /// Effective tunnel latency (overlay link + underlay path), ms.
    pub latency_ms: f64,
}

/// The overlay network: AS1755 OVS nodes hosted on the underlay servers.
#[derive(Debug, Clone)]
pub struct Overlay {
    topology: Topology,
    host_of: Vec<ServerId>,
    tunnels: Vec<VxlanTunnel>,
}

impl Overlay {
    /// Builds the AS1755 overlay over the given underlay.
    pub fn build(underlay: &Underlay) -> Self {
        let topology = as1755();
        let n = topology.graph.node_count();
        let host_of: Vec<ServerId> = (0..n)
            .map(|k| ServerId(k % underlay.server_count()))
            .collect();
        let tunnels = topology
            .graph
            .edges()
            .map(|e| {
                let ha = host_of[e.a.index()];
                let hb = host_of[e.b.index()];
                let under_ms = underlay.server_path_latency_us(ha, hb) / 1000.0;
                VxlanTunnel {
                    a: e.a,
                    b: e.b,
                    latency_ms: e.weight + under_ms,
                }
            })
            .collect();
        Overlay {
            topology,
            host_of,
            tunnels,
        }
    }

    /// The overlay topology (AS1755).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The server hosting an overlay node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn host_of(&self, n: NodeId) -> ServerId {
        self.host_of[n.index()]
    }

    /// All VXLAN tunnels.
    pub fn tunnels(&self) -> &[VxlanTunnel] {
        &self.tunnels
    }

    /// Number of OVS nodes hosted on `server`.
    pub fn nodes_on(&self, server: ServerId) -> usize {
        self.host_of.iter().filter(|s| **s == server).count()
    }

    /// Mean VXLAN overhead (underlay contribution) across all tunnels, ms.
    pub fn mean_vxlan_overhead_ms(&self) -> f64 {
        let total: f64 = self
            .tunnels
            .iter()
            .zip(self.topology.graph.edges())
            .map(|(t, e)| t.latency_ms - e.weight)
            .sum();
        total / self.tunnels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay() -> Overlay {
        Overlay::build(&Underlay::paper_testbed())
    }

    #[test]
    fn one_tunnel_per_as1755_link() {
        let o = overlay();
        assert_eq!(o.tunnels().len(), 161);
        assert_eq!(o.topology().graph.node_count(), 87);
    }

    #[test]
    fn nodes_spread_across_servers() {
        let o = overlay();
        for k in 0..5 {
            let c = o.nodes_on(ServerId(k));
            assert!(c >= 87 / 5, "server {k} hosts only {c}");
        }
    }

    #[test]
    fn tunnel_latency_exceeds_overlay_link() {
        let o = overlay();
        for (t, e) in o.tunnels().iter().zip(o.topology().graph.edges()) {
            assert!(t.latency_ms >= e.weight, "tunnel lost latency");
        }
    }

    #[test]
    fn vxlan_overhead_is_microseconds() {
        let o = overlay();
        let ovh = o.mean_vxlan_overhead_ms();
        assert!(ovh > 0.0 && ovh < 0.1, "overhead {ovh} ms looks wrong");
    }

    #[test]
    fn deterministic() {
        let a = overlay();
        let b = overlay();
        for (x, y) in a.tunnels().iter().zip(b.tunnels()) {
            assert_eq!(x.latency_ms, y.latency_ms);
        }
    }
}
