//! Emulated SDN testbed (paper Section IV-C, Fig. 4).
//!
//! The paper's physical testbed — five heterogeneous hardware switches, five
//! i7-8700 servers, an OVS/VXLAN overlay shaped like AS1755, and a Ryu
//! controller hosting the algorithms — is emulated here:
//!
//! * [`switch`] — per-model forwarding latency / throughput,
//! * [`underlay`] — the wired 5-switch, 5-server fabric (single-failure
//!   tolerant, as the paper requires),
//! * [`overlay`] — AS1755 OVS nodes pinned to servers, VXLAN tunnel
//!   latencies,
//! * [`controller`] — flow-rule compiler plus the three algorithms as
//!   controller applications,
//! * [`run`] — the experiment driver measuring social cost and wall-clock
//!   running time (the quantities of Figs. 5–7).
//!
//! Substitution note (see DESIGN.md): the testbed figures measure algorithm
//! *cost* and *running time* on the AS1755 overlay; both depend on the
//! overlay topology and the algorithms, not on proprietary switch
//! internals, so datasheet-class latency/throughput constants preserve the
//! relevant behaviour.
//!
//! # Examples
//!
//! ```
//! use mec_core::lcf::LcfConfig;
//! use mec_testbed::{LcfApp, Testbed};
//! use mec_workload::Params;
//!
//! let tb = Testbed::new(&Params::paper().with_providers(15), 7);
//! let report = tb.run(&LcfApp { config: LcfConfig::new(0.7) })?;
//! assert!(report.social_cost > 0.0);
//! # Ok::<(), mec_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod failure;
pub mod overlay;
pub mod run;
pub mod switch;
pub mod underlay;
pub mod vm;

pub use controller::{
    AppOutcome, Controller, ControllerApp, FlowRule, JoOffloadCacheApp, LcfApp, OffloadCacheApp,
};
pub use failure::{drill_all, fail_switch, FailureReport};
pub use overlay::{Overlay, VxlanTunnel};
pub use run::{Testbed, TestbedReport};
pub use switch::SwitchModel;
pub use underlay::{Server, ServerId, SwitchId, Underlay};
pub use vm::{deploy, VmDeployment, VmInstance};
