//! VM lifecycle on the testbed servers.
//!
//! In the real testbed every cached service instance is a VM created on
//! the server hosting the target cloudlet's OVS node. This module performs
//! that mapping for a placement: it materializes one [`VmInstance`] per
//! cached service, bins them onto the five physical servers, and reports
//! core usage / oversubscription — the physical-feasibility check behind
//! the overlay abstraction.

use mec_core::strategy::{Placement, Profile};
use mec_core::ProviderId;
use mec_topology::CloudletId;
use mec_workload::Scenario;

use crate::overlay::Overlay;
use crate::underlay::{ServerId, Underlay};

/// One cached service instance materialized as a VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmInstance {
    /// The provider whose service this VM runs.
    pub provider: ProviderId,
    /// The cloudlet the service is cached at.
    pub cloudlet: CloudletId,
    /// The physical server hosting the VM.
    pub server: ServerId,
    /// vCPU cores the VM occupies (⌈compute demand⌉, min 1).
    pub cores: usize,
}

/// Result of deploying a placement onto the physical servers.
#[derive(Debug, Clone)]
pub struct VmDeployment {
    /// All materialized VMs.
    pub vms: Vec<VmInstance>,
    /// Cores used per server.
    pub cores_used: Vec<usize>,
    /// Core capacity per server.
    pub cores_capacity: Vec<usize>,
}

impl VmDeployment {
    /// Number of VMs created.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Worst per-server oversubscription ratio `used / capacity`
    /// (can exceed 1 — hypervisors oversubscribe vCPUs).
    pub fn max_oversubscription(&self) -> f64 {
        self.cores_used
            .iter()
            .zip(&self.cores_capacity)
            .map(|(&u, &c)| u as f64 / c.max(1) as f64)
            .fold(0.0, f64::max)
    }

    /// VMs hosted on a server.
    pub fn vms_on(&self, server: ServerId) -> usize {
        self.vms.iter().filter(|v| v.server == server).count()
    }
}

/// Materializes the VMs a placement requires.
///
/// Each cached service becomes one VM on the server hosting the overlay
/// node of its cloudlet; remote placements create no VM (the original
/// instance already runs in the data center).
///
/// # Panics
///
/// Panics if `profile` does not match the scenario's market.
pub fn deploy(
    scenario: &Scenario,
    overlay: &Overlay,
    underlay: &Underlay,
    profile: &Profile,
) -> VmDeployment {
    let market = &scenario.generated.market;
    assert_eq!(profile.len(), market.provider_count(), "profile mismatch");
    assert_eq!(
        scenario.net.topology().graph.node_count(),
        overlay.topology().graph.node_count(),
        "scenario and overlay must share the same (AS1755) node space"
    );
    let mut vms = Vec::new();
    let mut cores_used = vec![0usize; underlay.server_count()];
    for (l, p) in profile.iter() {
        if let Placement::Cloudlet(c) = p {
            let site = scenario.net.cloudlet_site(c);
            // Scenario and overlay share the AS1755 node space.
            let server = overlay.host_of(site);
            let cores = (market.provider(l).compute_demand.ceil() as usize).max(1);
            cores_used[server.0] += cores;
            vms.push(VmInstance {
                provider: l,
                cloudlet: c,
                server,
                cores,
            });
        }
    }
    let cores_capacity = (0..underlay.server_count())
        .map(|k| underlay.server(ServerId(k)).cores)
        .collect();
    VmDeployment {
        vms,
        cores_used,
        cores_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerApp, LcfApp};
    use mec_core::lcf::LcfConfig;
    use mec_num::assert_approx_eq;
    use mec_workload::{as1755_scenario, Params};

    fn setup() -> (Scenario, Overlay, Underlay, Profile) {
        let underlay = Underlay::paper_testbed();
        let overlay = Overlay::build(&underlay);
        let scenario = as1755_scenario(&Params::paper().with_providers(30), 3);
        let profile = LcfApp {
            config: LcfConfig::new(0.7),
        }
        .compute(&scenario)
        .unwrap()
        .profile;
        (scenario, overlay, underlay, profile)
    }

    #[test]
    fn one_vm_per_cached_service() {
        let (s, o, u, p) = setup();
        let d = deploy(&s, &o, &u, &p);
        let cached = p
            .iter()
            .filter(|(_, x)| matches!(x, Placement::Cloudlet(_)))
            .count();
        assert_eq!(d.vm_count(), cached);
    }

    #[test]
    fn cores_accounted_per_server() {
        let (s, o, u, p) = setup();
        let d = deploy(&s, &o, &u, &p);
        let total_cores: usize = d.vms.iter().map(|v| v.cores).sum();
        let accounted: usize = d.cores_used.iter().sum();
        assert_eq!(total_cores, accounted);
        assert_eq!(d.cores_capacity, vec![12; 5]);
    }

    #[test]
    fn vms_land_on_their_cloudlets_server() {
        let (s, o, u, p) = setup();
        let d = deploy(&s, &o, &u, &p);
        for vm in &d.vms {
            let site = s.net.cloudlet_site(vm.cloudlet);
            assert_eq!(vm.server, o.host_of(site));
        }
    }

    #[test]
    fn oversubscription_reported() {
        let (s, o, u, p) = setup();
        let d = deploy(&s, &o, &u, &p);
        let os = d.max_oversubscription();
        assert!(os >= 0.0 && os.is_finite());
        let per_server: usize = (0..5).map(|k| d.vms_on(ServerId(k))).sum();
        assert_eq!(per_server, d.vm_count());
    }

    #[test]
    fn all_remote_deploys_nothing() {
        let (s, o, u, _) = setup();
        let p = Profile::all_remote(s.generated.market.provider_count());
        let d = deploy(&s, &o, &u, &p);
        assert_eq!(d.vm_count(), 0);
        assert_approx_eq!(d.max_oversubscription(), 0.0, 1e-12);
    }
}
