//! Hardware-switch models of the paper's physical underlay (Fig. 4).
//!
//! The real testbed uses five heterogeneous switches (Huawei, H3C, Ruijie,
//! Cisco, Centec). We model each as a store-and-forward device with a
//! per-packet forwarding latency and a backplane throughput taken from
//! datasheet-class numbers. The testbed experiments measure algorithm cost
//! and running time on the overlay, so what matters is that forwarding
//! delays are heterogeneous, positive, and deterministic — which these
//! models preserve.

/// The five switch models deployed in the physical underlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchModel {
    /// Huawei S5720-32C-HI-24S-AC.
    HuaweiS5720,
    /// H3C S5560-30S-EI.
    H3cS5560,
    /// Ruijie RG-5750C-28Gt4XS-H.
    RuijieRg5750,
    /// Cisco 3750X-24T.
    Cisco3750X,
    /// Centec aSW1100-48T4X.
    CentecAsw1100,
}

impl SwitchModel {
    /// All five models, in the paper's order.
    pub const ALL: [SwitchModel; 5] = [
        SwitchModel::HuaweiS5720,
        SwitchModel::H3cS5560,
        SwitchModel::RuijieRg5750,
        SwitchModel::Cisco3750X,
        SwitchModel::CentecAsw1100,
    ];

    /// Store-and-forward latency per packet, microseconds.
    pub fn forwarding_latency_us(self) -> f64 {
        match self {
            SwitchModel::HuaweiS5720 => 2.8,
            SwitchModel::H3cS5560 => 3.1,
            SwitchModel::RuijieRg5750 => 3.5,
            SwitchModel::Cisco3750X => 4.2,
            SwitchModel::CentecAsw1100 => 2.5,
        }
    }

    /// Backplane throughput, Gbps.
    pub fn throughput_gbps(self) -> f64 {
        match self {
            SwitchModel::HuaweiS5720 => 672.0,
            SwitchModel::H3cS5560 => 598.0,
            SwitchModel::RuijieRg5750 => 336.0,
            SwitchModel::Cisco3750X => 160.0,
            SwitchModel::CentecAsw1100 => 176.0,
        }
    }

    /// Number of usable ports in the testbed wiring.
    pub fn ports(self) -> usize {
        match self {
            SwitchModel::HuaweiS5720 => 24,
            SwitchModel::H3cS5560 => 30,
            SwitchModel::RuijieRg5750 => 28,
            SwitchModel::Cisco3750X => 24,
            SwitchModel::CentecAsw1100 => 48,
        }
    }

    /// Vendor/model label.
    pub fn label(self) -> &'static str {
        match self {
            SwitchModel::HuaweiS5720 => "Huawei S5720-32C-HI-24S-AC",
            SwitchModel::H3cS5560 => "H3C S5560-30S-EI",
            SwitchModel::RuijieRg5750 => "Ruijie RG-5750C-28Gt4XS-H",
            SwitchModel::Cisco3750X => "CISCO 3750X-24T",
            SwitchModel::CentecAsw1100 => "Centec aSW1100-48T4X",
        }
    }
}

impl std::fmt::Display for SwitchModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_models() {
        assert_eq!(SwitchModel::ALL.len(), 5);
    }

    #[test]
    fn latencies_positive_and_heterogeneous() {
        let lats: Vec<f64> = SwitchModel::ALL
            .iter()
            .map(|s| s.forwarding_latency_us())
            .collect();
        assert!(lats.iter().all(|&l| l > 0.0));
        let distinct: std::collections::HashSet<u64> = lats.iter().map(|l| l.to_bits()).collect();
        assert_eq!(distinct.len(), 5, "models must differ");
    }

    #[test]
    fn throughput_and_ports_positive() {
        for s in SwitchModel::ALL {
            assert!(s.throughput_gbps() > 0.0);
            assert!(s.ports() >= 24);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert!(SwitchModel::HuaweiS5720.label().contains("S5720"));
        assert!(SwitchModel::Cisco3750X.to_string().contains("3750X"));
    }
}
