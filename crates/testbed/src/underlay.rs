//! The physical underlay: five hardware switches and five servers (Fig. 4).
//!
//! Each switch connects to at least two other switches so the network
//! survives a single switch failure, exactly as the paper describes. One
//! server (i7-8700, 16 GB) hangs off each switch and hosts the overlay's
//! OVS nodes and VMs.

use crate::switch::SwitchModel;

/// Index of a switch in the underlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub usize);

/// Index of a server in the underlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub usize);

/// A physical server (i7-8700 CPU, 16 GB RAM) attached to one switch.
#[derive(Debug, Clone)]
pub struct Server {
    /// The switch this server is cabled to.
    pub attached_to: SwitchId,
    /// Logical CPU cores available for VMs.
    pub cores: usize,
    /// RAM in GiB.
    pub ram_gib: usize,
}

/// The wired underlay.
#[derive(Debug, Clone)]
pub struct Underlay {
    switches: Vec<SwitchModel>,
    /// Adjacency (switch–switch cables), by switch index.
    links: Vec<(usize, usize)>,
    servers: Vec<Server>,
}

impl Underlay {
    /// Builds the testbed underlay: 5 switches in a ring plus two chords
    /// (every switch has degree ≥ 2, so any single switch failure leaves
    /// the rest connected), one server per switch.
    pub fn paper_testbed() -> Self {
        let switches = SwitchModel::ALL.to_vec();
        // Ring 0-1-2-3-4-0 plus chords 0-2 and 1-3.
        let links = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)];
        let servers = (0..5)
            .map(|k| Server {
                attached_to: SwitchId(k),
                cores: 12, // i7-8700: 6 cores / 12 threads
                ram_gib: 16,
            })
            .collect();
        Underlay {
            switches,
            links,
            servers,
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The model of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn switch(&self, s: SwitchId) -> SwitchModel {
        self.switches[s.0]
    }

    /// The server description.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn server(&self, s: ServerId) -> &Server {
        &self.servers[s.0]
    }

    /// Degree of a switch in the cable graph.
    pub fn degree(&self, s: SwitchId) -> usize {
        self.links
            .iter()
            .filter(|(a, b)| *a == s.0 || *b == s.0)
            .count()
    }

    /// Hop-by-hop forwarding latency (µs) of the shortest switch path
    /// between two servers, including both end switches.
    ///
    /// # Panics
    ///
    /// Panics if either server id is out of range.
    pub fn server_path_latency_us(&self, a: ServerId, b: ServerId) -> f64 {
        let sa = self.servers[a.0].attached_to;
        let sb = self.servers[b.0].attached_to;
        if sa == sb {
            return self.switches[sa.0].forwarding_latency_us();
        }
        // BFS over the tiny switch graph weighting nodes by latency.
        let n = self.switches.len();
        let mut best = vec![f64::INFINITY; n];
        best[sa.0] = self.switches[sa.0].forwarding_latency_us();
        let mut frontier = vec![sa.0];
        while let Some(u) = frontier.pop() {
            for &(x, y) in &self.links {
                let v = if x == u {
                    y
                } else if y == u {
                    x
                } else {
                    continue;
                };
                let cand = best[u] + self.switches[v].forwarding_latency_us();
                if cand < best[v] - 1e-12 {
                    best[v] = cand;
                    frontier.push(v);
                }
            }
        }
        best[sb.0]
    }

    /// Like [`Underlay::server_path_latency_us`] but with switch `down`
    /// removed from the fabric. Returns `None` when either endpoint hangs
    /// off the failed switch or no path survives.
    pub fn server_path_latency_us_with_failure(
        &self,
        a: ServerId,
        b: ServerId,
        down: SwitchId,
    ) -> Option<f64> {
        let sa = self.servers[a.0].attached_to;
        let sb = self.servers[b.0].attached_to;
        if sa == down || sb == down {
            return None;
        }
        if sa == sb {
            return Some(self.switches[sa.0].forwarding_latency_us());
        }
        let n = self.switches.len();
        let mut best = vec![f64::INFINITY; n];
        best[sa.0] = self.switches[sa.0].forwarding_latency_us();
        let mut frontier = vec![sa.0];
        while let Some(u) = frontier.pop() {
            for &(x, y) in &self.links {
                if x == down.0 || y == down.0 {
                    continue;
                }
                let v = if x == u {
                    y
                } else if y == u {
                    x
                } else {
                    continue;
                };
                let cand = best[u] + self.switches[v].forwarding_latency_us();
                if cand < best[v] - 1e-12 {
                    best[v] = cand;
                    frontier.push(v);
                }
            }
        }
        best[sb.0].is_finite().then_some(best[sb.0])
    }

    /// `true` if the switch graph stays connected after removing `down`.
    pub fn survives_failure(&self, down: SwitchId) -> bool {
        let n = self.switches.len();
        let alive: Vec<usize> = (0..n).filter(|&k| k != down.0).collect();
        if alive.is_empty() {
            return true;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![alive[0]];
        seen.insert(alive[0]);
        while let Some(u) = stack.pop() {
            for &(x, y) in &self.links {
                if x == down.0 || y == down.0 {
                    continue;
                }
                let v = if x == u {
                    y
                } else if y == u {
                    x
                } else {
                    continue;
                };
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == alive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_switches_five_servers() {
        let u = Underlay::paper_testbed();
        assert_eq!(u.switch_count(), 5);
        assert_eq!(u.server_count(), 5);
    }

    #[test]
    fn every_switch_has_degree_at_least_two() {
        let u = Underlay::paper_testbed();
        for k in 0..5 {
            assert!(u.degree(SwitchId(k)) >= 2, "switch {k}");
        }
    }

    #[test]
    fn survives_any_single_switch_failure() {
        let u = Underlay::paper_testbed();
        for k in 0..5 {
            assert!(u.survives_failure(SwitchId(k)), "switch {k} down");
        }
    }

    #[test]
    fn path_latency_positive_and_symmetric() {
        let u = Underlay::paper_testbed();
        for a in 0..5 {
            for b in 0..5 {
                let l = u.server_path_latency_us(ServerId(a), ServerId(b));
                assert!(l > 0.0 && l.is_finite());
                let r = u.server_path_latency_us(ServerId(b), ServerId(a));
                assert!((l - r).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn same_server_pays_single_switch() {
        let u = Underlay::paper_testbed();
        let l = u.server_path_latency_us(ServerId(0), ServerId(0));
        assert!((l - u.switch(SwitchId(0)).forwarding_latency_us()).abs() < 1e-12);
    }

    #[test]
    fn servers_are_i7_8700_class() {
        let u = Underlay::paper_testbed();
        for k in 0..5 {
            let s = u.server(ServerId(k));
            assert_eq!(s.cores, 12);
            assert_eq!(s.ram_gib, 16);
        }
    }
}
