//! Testbed experiment driver: deploy an algorithm, measure cost and time.
//!
//! Mirrors the paper's testbed methodology (Section IV-C): the AS1755
//! overlay runs on the five-switch underlay, the algorithms execute as
//! controller applications, and we record the social cost of the resulting
//! placement plus the *measured wall-clock running time* of the algorithm —
//! the two quantities plotted in Figs. 5–7.

use std::time::{Duration, Instant};

use mec_core::CoreError;
use mec_sim::{simulate, SimConfig, SimReport};
use mec_workload::{as1755_scenario, Params, Scenario};

use crate::controller::{Controller, ControllerApp};
use crate::overlay::Overlay;
use crate::underlay::Underlay;

/// A fully assembled testbed: underlay + overlay + generated workload.
#[derive(Debug)]
pub struct Testbed {
    underlay: Underlay,
    overlay: Overlay,
    scenario: Scenario,
}

/// Everything measured from one algorithm run on the testbed.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Social cost of the deployed placement (Eq. 6).
    pub social_cost: f64,
    /// Cost paid by coordinated providers (0 for baselines).
    pub coordinated_cost: f64,
    /// Cost paid by uncoordinated providers.
    pub selfish_cost: f64,
    /// Measured wall-clock running time of the algorithm.
    pub running_time: Duration,
    /// Flow rules the controller installed.
    pub flow_rules: usize,
    /// Mean installed-path latency over the overlay, ms.
    pub mean_path_latency_ms: f64,
    /// Request-level simulation of the deployed placement.
    pub sim: SimReport,
    /// VMs materialized on the physical servers for this placement.
    pub vm_count: usize,
    /// Worst per-server core oversubscription of the deployment.
    pub max_oversubscription: f64,
}

impl Testbed {
    /// Assembles the paper's testbed with the given workload parameters.
    pub fn new(params: &Params, seed: u64) -> Self {
        let underlay = Underlay::paper_testbed();
        let overlay = Overlay::build(&underlay);
        let scenario = as1755_scenario(params, seed);
        Testbed {
            underlay,
            overlay,
            scenario,
        }
    }

    /// The physical underlay.
    pub fn underlay(&self) -> &Underlay {
        &self.underlay
    }

    /// The VXLAN overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The generated workload scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs one algorithm end to end: compute placement (timed), install
    /// flow rules, replay the request streams.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the application.
    pub fn run(&self, app: &dyn ControllerApp) -> Result<TestbedReport, CoreError> {
        let started = Instant::now();
        let outcome = app.compute(&self.scenario)?;
        let running_time = started.elapsed();

        let mut controller = Controller::new();
        let flow_rules = controller.install_placement(&self.scenario, &outcome.profile);
        let market = &self.scenario.generated.market;
        let social_cost = outcome.profile.social_cost(market);
        let coordinated_cost = outcome
            .profile
            .subset_cost(market, outcome.coordinated.iter().copied());
        let selfish: Vec<_> = market
            .providers()
            .filter(|l| !outcome.coordinated.contains(l))
            .collect();
        let selfish_cost = outcome.profile.subset_cost(market, selfish);

        let sim = simulate(
            &self.scenario.net,
            &self.scenario.generated,
            &outcome.profile,
            &SimConfig::default(),
        );
        let deployment = crate::vm::deploy(
            &self.scenario,
            &self.overlay,
            &self.underlay,
            &outcome.profile,
        );

        Ok(TestbedReport {
            algorithm: app.name(),
            social_cost,
            coordinated_cost,
            selfish_cost,
            running_time,
            flow_rules,
            mean_path_latency_ms: controller.mean_rule_latency_ms(),
            sim,
            vm_count: deployment.vm_count(),
            max_oversubscription: deployment.max_oversubscription(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{JoOffloadCacheApp, LcfApp, OffloadCacheApp};
    use mec_core::lcf::LcfConfig;

    fn testbed(providers: usize, seed: u64) -> Testbed {
        Testbed::new(&Params::paper().with_providers(providers), seed)
    }

    #[test]
    fn runs_all_three_algorithms() {
        let tb = testbed(20, 1);
        let apps: Vec<Box<dyn ControllerApp>> = vec![
            Box::new(LcfApp {
                config: LcfConfig::new(0.7),
            }),
            Box::new(JoOffloadCacheApp::default()),
            Box::new(OffloadCacheApp),
        ];
        for app in &apps {
            let rep = tb.run(app.as_ref()).unwrap();
            assert!(rep.social_cost > 0.0);
            assert_eq!(rep.flow_rules, 20);
            assert!(rep.sim.completed > 0);
            assert!((rep.coordinated_cost + rep.selfish_cost - rep.social_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn lcf_beats_baselines_on_social_cost() {
        // The paper's headline testbed result (Fig. 5a). Checked across
        // seeds to avoid cherry-picking.
        let mut wins = 0;
        for seed in 0..5 {
            let tb = testbed(40, 100 + seed);
            let lcf = tb
                .run(&LcfApp {
                    config: LcfConfig::new(0.7),
                })
                .unwrap();
            let jo = tb.run(&JoOffloadCacheApp::default()).unwrap();
            let of = tb.run(&OffloadCacheApp).unwrap();
            if lcf.social_cost <= jo.social_cost && lcf.social_cost <= of.social_cost {
                wins += 1;
            }
        }
        assert!(wins >= 4, "LCF won only {wins}/5 testbed runs");
    }

    #[test]
    fn running_time_measured() {
        let tb = testbed(15, 2);
        let rep = tb
            .run(&LcfApp {
                config: LcfConfig::new(0.7),
            })
            .unwrap();
        assert!(rep.running_time > Duration::ZERO);
    }

    #[test]
    fn testbed_components_assembled() {
        let tb = testbed(10, 3);
        assert_eq!(tb.underlay().switch_count(), 5);
        assert_eq!(tb.overlay().tunnels().len(), 161);
        assert_eq!(tb.scenario().label, "as1755");
    }
}
