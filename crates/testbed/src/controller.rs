//! The SDN controller and its algorithm applications.
//!
//! The paper implements its algorithms as Ryu applications driving the OVS
//! overlay. We model the controller as a flow-table owner: an application
//! computes a placement, and the controller compiles it into per-provider
//! flow rules (user node → serving site paths over the overlay) whose
//! count and path latency the testbed reports.

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::strategy::{Placement, Profile};
use mec_core::{CoreError, ProviderId};
use mec_topology::{dijkstra, NodeId};
use mec_workload::Scenario;

/// A flow rule installed for one provider's request path.
#[derive(Debug, Clone)]
pub struct FlowRule {
    /// The provider whose traffic this rule steers.
    pub provider: ProviderId,
    /// Overlay path from the user node to the serving site.
    pub path: Vec<NodeId>,
    /// Total path latency, ms.
    pub latency_ms: f64,
}

/// What an application returns to the controller.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// The placement the application computed.
    pub profile: Profile,
    /// Providers the application coordinated (empty for baselines).
    pub coordinated: Vec<ProviderId>,
}

/// A controller application ("Ryu app") hosting one placement algorithm.
pub trait ControllerApp {
    /// Algorithm name as printed in the figures.
    fn name(&self) -> &'static str;

    /// Computes the placement for the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the scenario admits no feasible placement.
    fn compute(&self, scenario: &Scenario) -> Result<AppOutcome, CoreError>;
}

/// The paper's LCF mechanism as a controller app.
#[derive(Debug, Clone)]
pub struct LcfApp {
    /// LCF configuration (`ξ`, selection rule, `Appro` settings).
    pub config: LcfConfig,
}

impl ControllerApp for LcfApp {
    fn name(&self) -> &'static str {
        "LCF"
    }

    fn compute(&self, scenario: &Scenario) -> Result<AppOutcome, CoreError> {
        let out = lcf(&scenario.generated.market, &self.config)?;
        Ok(AppOutcome {
            profile: out.profile,
            coordinated: out.coordinated,
        })
    }
}

/// The `JoOffloadCache` baseline as a controller app.
#[derive(Debug, Clone, Default)]
pub struct JoOffloadCacheApp {
    /// Gibbs-sampler tuning.
    pub config: JoConfig,
}

impl ControllerApp for JoOffloadCacheApp {
    fn name(&self) -> &'static str {
        "JoOffloadCache"
    }

    fn compute(&self, scenario: &Scenario) -> Result<AppOutcome, CoreError> {
        let out = jo_offload_cache(&scenario.generated, &self.config);
        Ok(AppOutcome {
            profile: out.profile,
            coordinated: Vec::new(),
        })
    }
}

/// The `OffloadCache` baseline as a controller app.
#[derive(Debug, Clone, Default)]
pub struct OffloadCacheApp;

impl ControllerApp for OffloadCacheApp {
    fn name(&self) -> &'static str {
        "OffloadCache"
    }

    fn compute(&self, scenario: &Scenario) -> Result<AppOutcome, CoreError> {
        let out = offload_cache(&scenario.generated);
        Ok(AppOutcome {
            profile: out.profile,
            coordinated: Vec::new(),
        })
    }
}

/// The controller: compiles placements into flow rules over the overlay.
#[derive(Debug, Default)]
pub struct Controller {
    rules: Vec<FlowRule>,
}

impl Controller {
    /// Creates a controller with an empty flow table.
    pub fn new() -> Self {
        Controller::default()
    }

    /// Installed rules.
    pub fn rules(&self) -> &[FlowRule] {
        &self.rules
    }

    /// Compiles `profile` into flow rules: for every provider, the shortest
    /// overlay path from its user node to its serving site (cached cloudlet
    /// or home data center). Replaces the previous table and returns the
    /// number of rules installed.
    pub fn install_placement(&mut self, scenario: &Scenario, profile: &Profile) -> usize {
        self.rules.clear();
        let graph = &scenario.net.topology().graph;
        for (idx, meta) in scenario.generated.providers.iter().enumerate() {
            let l = ProviderId(idx);
            let target = match profile.placement(l) {
                Placement::Cloudlet(c) => scenario.net.cloudlet_site(c),
                Placement::Remote => scenario.net.dc_site(meta.home_dc),
            };
            let sp = dijkstra(graph, meta.user_node);
            if let Some(path) = sp.path(target) {
                let latency_ms = sp.distance(target);
                self.rules.push(FlowRule {
                    provider: l,
                    path,
                    latency_ms,
                });
            }
        }
        self.rules.len()
    }

    /// Mean path latency over all installed rules, ms (NaN if empty).
    pub fn mean_rule_latency_ms(&self) -> f64 {
        if self.rules.is_empty() {
            return f64::NAN;
        }
        self.rules.iter().map(|r| r.latency_ms).sum::<f64>() / self.rules.len() as f64
    }

    /// Total number of switch entries (path hops) across all rules — a
    /// proxy for flow-table pressure on the OVS nodes.
    pub fn total_table_entries(&self) -> usize {
        self.rules.iter().map(|r| r.path.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workload::{as1755_scenario, Params};

    fn scenario() -> Scenario {
        as1755_scenario(&Params::paper().with_providers(20), 1)
    }

    #[test]
    fn apps_have_paper_names() {
        assert_eq!(
            LcfApp {
                config: LcfConfig::new(0.7)
            }
            .name(),
            "LCF"
        );
        assert_eq!(JoOffloadCacheApp::default().name(), "JoOffloadCache");
        assert_eq!(OffloadCacheApp.name(), "OffloadCache");
    }

    #[test]
    fn lcf_app_computes_feasible_profile() {
        let s = scenario();
        let out = LcfApp {
            config: LcfConfig::new(0.7),
        }
        .compute(&s)
        .unwrap();
        assert!(out.profile.is_feasible(&s.generated.market));
        assert_eq!(out.coordinated.len(), 14);
    }

    #[test]
    fn baseline_apps_compute() {
        let s = scenario();
        for app in [
            Box::new(JoOffloadCacheApp::default()) as Box<dyn ControllerApp>,
            Box::new(OffloadCacheApp) as Box<dyn ControllerApp>,
        ] {
            let out = app.compute(&s).unwrap();
            assert!(out.profile.is_feasible(&s.generated.market));
            assert!(out.coordinated.is_empty());
        }
    }

    #[test]
    fn controller_installs_one_rule_per_provider() {
        let s = scenario();
        let out = OffloadCacheApp.compute(&s).unwrap();
        let mut c = Controller::new();
        let n = c.install_placement(&s, &out.profile);
        assert_eq!(n, 20);
        assert_eq!(c.rules().len(), 20);
        assert!(c.mean_rule_latency_ms() > 0.0);
        assert!(c.total_table_entries() >= 20);
    }

    #[test]
    fn rules_start_at_user_and_end_at_site() {
        let s = scenario();
        let out = OffloadCacheApp.compute(&s).unwrap();
        let mut c = Controller::new();
        c.install_placement(&s, &out.profile);
        for rule in c.rules() {
            let meta = &s.generated.providers[rule.provider.index()];
            assert_eq!(rule.path.first(), Some(&meta.user_node));
            let end = *rule.path.last().unwrap();
            match out.profile.placement(rule.provider) {
                Placement::Cloudlet(cl) => assert_eq!(end, s.net.cloudlet_site(cl)),
                Placement::Remote => assert_eq!(end, s.net.dc_site(meta.home_dc)),
            }
        }
    }
}
