//! The service-caching market model (paper Section II).
//!
//! A [`Market`] couples a set of capacitated cloudlets with a set of network
//! service providers, each wanting to cache one service. The cost of caching
//! service `l` in cloudlet `i` is the congestion-aware expression of Eq. (3):
//!
//! ```text
//! c_{l,i} = (α_i + β_i) · |σ_i| + c_l_ins + c_{l,i}_bdw
//! ```
//!
//! where `|σ_i|` is the number of providers cached at `i`. The paper indexes
//! the bandwidth/update term by cloudlet only (`c_i_bdw`); we allow it to be
//! per-(provider, cloudlet) — set it uniformly per cloudlet to recover the
//! paper's exact model, or derive it from update volumes and DC distances as
//! the experiment harness does.
//!
//! Each provider may also *not* cache ("to cache or not to cache") and keep
//! serving from its remote data center at a congestion-free
//! [`ProviderSpec::remote_cost`]; set that to `f64::INFINITY` to forbid it.

use mec_num::approx_zero;
use mec_topology::CloudletId;

/// Identifier of a network service provider (dense index into the market).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ProviderId(pub usize);

impl ProviderId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProviderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sp{}", self.0)
    }
}

/// Static description of one cloudlet (resources and congestion pricing).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CloudletSpec {
    /// Computing capacity `C(CL_i)` (VM units).
    pub compute_capacity: f64,
    /// Bandwidth capacity `B(CL_i)` (Mbps).
    pub bandwidth_capacity: f64,
    /// Computing-congestion price coefficient `α_i`.
    pub alpha: f64,
    /// Bandwidth-congestion price coefficient `β_i`.
    pub beta: f64,
}

impl CloudletSpec {
    /// Validates and builds a cloudlet spec.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite or negative.
    pub fn new(compute_capacity: f64, bandwidth_capacity: f64, alpha: f64, beta: f64) -> Self {
        for (name, v) in [
            ("compute_capacity", compute_capacity),
            ("bandwidth_capacity", bandwidth_capacity),
            ("alpha", alpha),
            ("beta", beta),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        }
        CloudletSpec {
            compute_capacity,
            bandwidth_capacity,
            alpha,
            beta,
        }
    }

    /// Congestion price per cached service, `α_i + β_i`.
    #[inline]
    pub fn congestion_price(&self) -> f64 {
        self.alpha + self.beta
    }
}

/// Static description of one provider's service (demands and base costs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProviderSpec {
    /// Total computing demand `a_l · r_l` (VM units).
    pub compute_demand: f64,
    /// Total bandwidth demand `b_l · r_l` (Mbps).
    pub bandwidth_demand: f64,
    /// Instantiation + processing cost `c_l_ins` (dollars).
    pub instantiation_cost: f64,
    /// Cost of serving from the remote data center instead of caching
    /// (`f64::INFINITY` forbids the remote option).
    pub remote_cost: f64,
}

impl ProviderSpec {
    /// Validates and builds a provider spec.
    ///
    /// # Panics
    ///
    /// Panics if demands/costs are negative or NaN (remote cost may be
    /// `INFINITY`).
    pub fn new(
        compute_demand: f64,
        bandwidth_demand: f64,
        instantiation_cost: f64,
        remote_cost: f64,
    ) -> Self {
        for (name, v) in [
            ("compute_demand", compute_demand),
            ("bandwidth_demand", bandwidth_demand),
            ("instantiation_cost", instantiation_cost),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        }
        assert!(
            !remote_cost.is_nan() && remote_cost >= 0.0,
            "remote_cost must be >= 0 or INFINITY"
        );
        ProviderSpec {
            compute_demand,
            bandwidth_demand,
            instantiation_cost,
            remote_cost,
        }
    }

    /// `true` if the provider is allowed to keep serving remotely.
    #[inline]
    pub fn can_stay_remote(&self) -> bool {
        self.remote_cost.is_finite()
    }
}

/// A service-caching market: cloudlets, providers, and the fixed
/// bandwidth/update cost of every (provider, cloudlet) pair.
#[derive(Debug, Clone)]
pub struct Market {
    cloudlets: Vec<CloudletSpec>,
    providers: Vec<ProviderSpec>,
    /// `providers × cloudlets`: `c_{l,i}_bdw`.
    update_cost: Vec<f64>,
}

impl Market {
    /// Starts building a market. See [`MarketBuilder`].
    pub fn builder() -> MarketBuilder {
        MarketBuilder::default()
    }

    /// Number of cloudlets.
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets.len()
    }

    /// Number of providers (`|N|`).
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Iterates over cloudlet ids.
    pub fn cloudlets(&self) -> impl Iterator<Item = CloudletId> + '_ {
        (0..self.cloudlets.len()).map(CloudletId)
    }

    /// Iterates over provider ids.
    pub fn providers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        (0..self.providers.len()).map(ProviderId)
    }

    /// Spec of cloudlet `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cloudlet(&self, i: CloudletId) -> &CloudletSpec {
        &self.cloudlets[i.index()]
    }

    /// Spec of provider `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn provider(&self, l: ProviderId) -> &ProviderSpec {
        &self.providers[l.index()]
    }

    /// Fixed bandwidth/update cost `c_{l,i}_bdw`.
    #[inline]
    pub fn update_cost(&self, l: ProviderId, i: CloudletId) -> f64 {
        self.update_cost[l.index() * self.cloudlets.len() + i.index()]
    }

    /// Congestion-free ("flat") cost of caching `l` at `i`:
    /// `α_i + β_i + c_l_ins + c_{l,i}_bdw` — the GAP cost of Eq. (9).
    pub fn flat_cost(&self, l: ProviderId, i: CloudletId) -> f64 {
        let cl = self.cloudlet(i);
        cl.alpha + cl.beta + self.provider(l).instantiation_cost + self.update_cost(l, i)
    }

    /// Cost of caching `l` at `i` when `congestion` providers (including `l`
    /// itself) are cached there — Eq. (3).
    pub fn caching_cost(&self, l: ProviderId, i: CloudletId, congestion: usize) -> f64 {
        let cl = self.cloudlet(i);
        cl.congestion_price() * congestion as f64
            + self.provider(l).instantiation_cost
            + self.update_cost(l, i)
    }

    /// Maximum computing demand `a_max` over providers.
    pub fn max_compute_demand(&self) -> f64 {
        self.providers
            .iter()
            .map(|p| p.compute_demand)
            .fold(0.0, f64::max)
    }

    /// Maximum bandwidth demand `b_max` over providers.
    pub fn max_bandwidth_demand(&self) -> f64 {
        self.providers
            .iter()
            .map(|p| p.bandwidth_demand)
            .fold(0.0, f64::max)
    }

    /// `true` if provider `l` fits in cloudlet `i` given residual capacity
    /// `(compute_left, bandwidth_left)`.
    pub fn fits(&self, l: ProviderId, free: (f64, f64)) -> bool {
        let p = self.provider(l);
        p.compute_demand <= free.0 + 1e-9 && p.bandwidth_demand <= free.1 + 1e-9
    }

    /// The paper's `δ = max_i C(CL_i)/a_max` (Lemma 2).
    pub fn delta(&self) -> f64 {
        let a_max = self.max_compute_demand();
        if approx_zero(a_max, 0.0) {
            return 1.0;
        }
        self.cloudlets
            .iter()
            .map(|c| c.compute_capacity / a_max)
            .fold(0.0, f64::max)
    }

    /// Replaces provider `l`'s `(compute, bandwidth)` demands in place —
    /// the serving layer's `UpdateDemand` operation. Aggregates derived
    /// from the old demands (a [`crate::state::GameState`] built over
    /// this market) must be rebuilt afterwards; they are not notified.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or a demand is negative/non-finite.
    pub fn set_provider_demand(&mut self, l: ProviderId, compute: f64, bandwidth: f64) {
        for (name, v) in [("compute_demand", compute), ("bandwidth_demand", bandwidth)] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        }
        let p = &mut self.providers[l.index()];
        p.compute_demand = compute;
        p.bandwidth_demand = bandwidth;
    }

    /// Builds a sub-market containing only `keep` (in the given order),
    /// with the same cloudlets and update costs. Used by the churn
    /// simulation ([`crate::dynamics`]) to replan for the active providers.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or contains an out-of-range id.
    pub fn restrict(&self, keep: &[ProviderId]) -> Market {
        assert!(!keep.is_empty(), "sub-market needs providers");
        let m = self.cloudlets.len();
        let providers: Vec<ProviderSpec> = keep
            .iter()
            .map(|l| self.providers[l.index()].clone())
            .collect();
        let mut update_cost = Vec::with_capacity(keep.len() * m);
        for l in keep {
            let row = &self.update_cost[l.index() * m..(l.index() + 1) * m];
            update_cost.extend_from_slice(row);
        }
        Market {
            cloudlets: self.cloudlets.clone(),
            providers,
            update_cost,
        }
    }

    /// The paper's `κ = max_i B(CL_i)/b_max` (Lemma 2).
    pub fn kappa(&self) -> f64 {
        let b_max = self.max_bandwidth_demand();
        if approx_zero(b_max, 0.0) {
            return 1.0;
        }
        self.cloudlets
            .iter()
            .map(|c| c.bandwidth_capacity / b_max)
            .fold(0.0, f64::max)
    }
}

/// Builder for [`Market`].
///
/// # Examples
///
/// ```
/// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
///
/// let market = Market::builder()
///     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
///     .cloudlet(CloudletSpec::new(25.0, 120.0, 0.3, 0.4))
///     .provider(ProviderSpec::new(2.0, 10.0, 1.0, 8.0))
///     .provider(ProviderSpec::new(3.0, 15.0, 1.5, 9.0))
///     .uniform_update_cost(0.5)
///     .build();
/// assert_eq!(market.cloudlet_count(), 2);
/// assert_eq!(market.provider_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct MarketBuilder {
    cloudlets: Vec<CloudletSpec>,
    providers: Vec<ProviderSpec>,
    update_cost: Option<Vec<f64>>,
    uniform_update: f64,
}

impl MarketBuilder {
    /// Adds a cloudlet.
    pub fn cloudlet(mut self, spec: CloudletSpec) -> Self {
        self.cloudlets.push(spec);
        self
    }

    /// Adds a provider.
    pub fn provider(mut self, spec: ProviderSpec) -> Self {
        self.providers.push(spec);
        self
    }

    /// Sets a single update cost for every (provider, cloudlet) pair —
    /// the paper's `c_i_bdw` made uniform.
    pub fn uniform_update_cost(mut self, cost: f64) -> Self {
        assert!(cost.is_finite() && cost >= 0.0, "update cost must be >= 0");
        self.uniform_update = cost;
        self.update_cost = None;
        self
    }

    /// Sets the full `providers × cloudlets` update-cost matrix (row-major
    /// by provider). Call after all cloudlets/providers are added.
    ///
    /// # Panics
    ///
    /// Panics at [`MarketBuilder::build`] if the dimensions do not match.
    pub fn update_cost_matrix(mut self, matrix: Vec<f64>) -> Self {
        self.update_cost = Some(matrix);
        self
    }

    /// Finalizes the market.
    ///
    /// # Panics
    ///
    /// Panics if there are no cloudlets or no providers, or if a supplied
    /// update-cost matrix has the wrong size or invalid entries.
    pub fn build(self) -> Market {
        assert!(!self.cloudlets.is_empty(), "market needs cloudlets");
        assert!(!self.providers.is_empty(), "market needs providers");
        let want = self.providers.len() * self.cloudlets.len();
        let update_cost = match self.update_cost {
            Some(m) => {
                assert_eq!(m.len(), want, "update-cost matrix has the wrong size");
                assert!(
                    m.iter().all(|v| v.is_finite() && *v >= 0.0),
                    "update costs must be finite and >= 0"
                );
                m
            }
            None => vec![self.uniform_update; want],
        };
        Market {
            cloudlets: self.cloudlets,
            providers: self.providers,
            update_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;

    pub(crate) fn toy_market() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(8.0, 40.0, 0.2, 0.3))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(3.0, 12.0, 1.5, 12.0))
            .provider(ProviderSpec::new(1.0, 8.0, 0.5, 6.0))
            .uniform_update_cost(0.4)
            .build()
    }

    #[test]
    fn builder_roundtrip() {
        let m = toy_market();
        assert_eq!(m.cloudlet_count(), 2);
        assert_eq!(m.provider_count(), 3);
        assert_approx_eq!(m.cloudlet(CloudletId(0)).compute_capacity, 10.0, 1e-12);
        assert_approx_eq!(m.provider(ProviderId(1)).bandwidth_demand, 12.0, 1e-12);
        assert_approx_eq!(m.update_cost(ProviderId(2), CloudletId(1)), 0.4, 0.0);
    }

    #[test]
    fn flat_cost_is_eq9() {
        let m = toy_market();
        // α0 + β0 + c_ins(p1) + update = 0.5+0.5+1.5+0.4
        let c = m.flat_cost(ProviderId(1), CloudletId(0));
        assert!((c - 2.9).abs() < 1e-12);
    }

    #[test]
    fn caching_cost_grows_with_congestion() {
        let m = toy_market();
        let c1 = m.caching_cost(ProviderId(0), CloudletId(0), 1);
        let c3 = m.caching_cost(ProviderId(0), CloudletId(0), 3);
        assert!((c3 - c1 - 2.0 * m.cloudlet(CloudletId(0)).congestion_price()).abs() < 1e-12);
    }

    #[test]
    fn flat_cost_equals_caching_cost_at_congestion_one() {
        let m = toy_market();
        for l in m.providers() {
            for i in m.cloudlets() {
                assert!((m.flat_cost(l, i) - m.caching_cost(l, i, 1)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn demand_maxima() {
        let m = toy_market();
        assert_approx_eq!(m.max_compute_demand(), 3.0, 1e-12);
        assert_approx_eq!(m.max_bandwidth_demand(), 12.0, 1e-12);
    }

    #[test]
    fn delta_kappa() {
        let m = toy_market();
        assert!((m.delta() - 10.0 / 3.0).abs() < 1e-12);
        assert!((m.kappa() - 50.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn fits_checks_both_dimensions() {
        let m = toy_market();
        assert!(m.fits(ProviderId(0), (2.0, 10.0)));
        assert!(!m.fits(ProviderId(0), (1.9, 10.0)));
        assert!(!m.fits(ProviderId(0), (2.0, 9.0)));
    }

    #[test]
    fn remote_option_flag() {
        let p = ProviderSpec::new(1.0, 1.0, 1.0, f64::INFINITY);
        assert!(!p.can_stay_remote());
        let q = ProviderSpec::new(1.0, 1.0, 1.0, 5.0);
        assert!(q.can_stay_remote());
    }

    #[test]
    #[should_panic(expected = "market needs cloudlets")]
    fn build_requires_cloudlets() {
        let _ = Market::builder()
            .provider(ProviderSpec::new(1.0, 1.0, 1.0, 1.0))
            .build();
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn update_matrix_size_checked() {
        let _ = Market::builder()
            .cloudlet(CloudletSpec::new(1.0, 1.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 1.0, 1.0, 1.0))
            .update_cost_matrix(vec![0.1, 0.2])
            .build();
    }

    #[test]
    fn specs_are_serde_data_structures() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<CloudletSpec>();
        assert_serde::<ProviderSpec>();
        assert_serde::<ProviderId>();
    }

    #[test]
    fn display_provider_id() {
        assert_eq!(ProviderId(4).to_string(), "sp4");
    }
}
