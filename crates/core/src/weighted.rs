//! Weighted congestion game: congestion measured by resource *load*.
//!
//! The paper counts congestion as the number of cached instances `|σ_i|`
//! (every service weighs the same). A natural refinement weighs each
//! service by its resource footprint — a VR renderer occupying 4 VMs
//! congests a cloudlet more than a 1-VM thumbnailer. This module implements
//! that *weighted affine congestion game*: provider `l` cached at `CL_i`
//! pays
//!
//! ```text
//! (α_i + β_i) · W_i + c_l_ins + c_{l,i}_bdw,     W_i = Σ_{k ∈ σ_i} w_k
//! ```
//!
//! with `w_k` the normalized load of provider `k`. Affine weighted
//! congestion games admit a *weighted* potential
//! (Fotakis–Kontogiannis–Spirakis):
//!
//! ```text
//! Φ(σ) = Σ_i (α_i+β_i)/2 · [ W_i² + Σ_{k ∈ σ_i} w_k² ] + Σ_l w_l · fixed_l
//! ```
//!
//! satisfying `ΔΦ = w_l · Δcost_l` for every unilateral move — so every
//! improving move by a positive-weight player strictly decreases `Φ` and
//! best-response dynamics converge here too (zero-weight players do not
//! affect anyone else, so they settle after one sweep). The tests verify
//! the weighted-potential identity move by move.

use crate::game::IMPROVEMENT_TOL;
use crate::model::{Market, ProviderId};
use crate::strategy::{Placement, Profile};

/// The weighted congestion game over a market.
///
/// Weights default to each provider's normalized compute+bandwidth
/// footprint; [`WeightedGame::with_weights`] overrides them.
#[derive(Debug, Clone)]
pub struct WeightedGame<'a> {
    market: &'a Market,
    weights: Vec<f64>,
}

impl<'a> WeightedGame<'a> {
    /// Builds the game with footprint weights
    /// `w_l = max(A_l/a_max, B_l/b_max)` (same normalization as `Appro`).
    pub fn new(market: &'a Market) -> Self {
        let a_max = market.max_compute_demand().max(1e-12);
        let b_max = market.max_bandwidth_demand().max(1e-12);
        let weights = market
            .providers()
            .map(|l| {
                let p = market.provider(l);
                (p.compute_demand / a_max).max(p.bandwidth_demand / b_max)
            })
            .collect();
        WeightedGame { market, weights }
    }

    /// Overrides the provider weights.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any weight is negative/non-finite.
    pub fn with_weights(market: &'a Market, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            market.provider_count(),
            "one weight per provider"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and >= 0"
        );
        WeightedGame { market, weights }
    }

    /// Weight of provider `l`.
    pub fn weight(&self, l: ProviderId) -> f64 {
        self.weights[l.index()]
    }

    /// Total cached load per cloudlet.
    pub fn loads(&self, profile: &Profile) -> Vec<f64> {
        let mut w = vec![0.0; self.market.cloudlet_count()];
        for (l, p) in profile.iter() {
            if let Placement::Cloudlet(i) = p {
                w[i.index()] += self.weights[l.index()];
            }
        }
        w
    }

    /// Cost of provider `l` under `profile`.
    pub fn provider_cost(&self, profile: &Profile, l: ProviderId) -> f64 {
        match profile.placement(l) {
            Placement::Remote => self.market.provider(l).remote_cost,
            Placement::Cloudlet(i) => {
                let load = self.loads(profile)[i.index()];
                self.market.cloudlet(i).congestion_price() * load
                    + self.market.provider(l).instantiation_cost
                    + self.market.update_cost(l, i)
            }
        }
    }

    /// Social cost: sum of all provider costs.
    pub fn social_cost(&self, profile: &Profile) -> f64 {
        self.market
            .providers()
            .map(|l| self.provider_cost(profile, l))
            .sum()
    }

    /// The weighted potential of the affine game
    /// (`ΔΦ = w_l · Δcost_l` for any unilateral move of `l`).
    pub fn potential(&self, profile: &Profile) -> f64 {
        let mut phi = 0.0;
        let mut load = vec![0.0; self.market.cloudlet_count()];
        let mut sq = vec![0.0; self.market.cloudlet_count()];
        for (l, p) in profile.iter() {
            let w = self.weights[l.index()];
            match p {
                Placement::Remote => phi += w * self.market.provider(l).remote_cost,
                Placement::Cloudlet(i) => {
                    load[i.index()] += w;
                    sq[i.index()] += w * w;
                    phi += w
                        * (self.market.provider(l).instantiation_cost
                            + self.market.update_cost(l, i));
                }
            }
        }
        for i in self.market.cloudlets() {
            let p = self.market.cloudlet(i).congestion_price();
            phi += p / 2.0 * (load[i.index()] * load[i.index()] + sq[i.index()]);
        }
        phi
    }

    /// Best response of `l` (capacity-aware).
    pub fn best_response(&self, profile: &Profile, l: ProviderId) -> Option<(Placement, f64)> {
        let market = self.market;
        let current = profile.placement(l);
        let mut residual = profile.residual(market);
        let mut load = self.loads(profile);
        if let Placement::Cloudlet(c) = current {
            let spec = market.provider(l);
            residual[c.index()].0 += spec.compute_demand;
            residual[c.index()].1 += spec.bandwidth_demand;
            load[c.index()] -= self.weights[l.index()];
        }
        let mut best: Option<(Placement, f64)> = None;
        let mut consider = |p: Placement, cost: f64| {
            let better = match best {
                None => true,
                Some((bp, bc)) => {
                    cost < bc - IMPROVEMENT_TOL
                        || ((cost - bc).abs() <= IMPROVEMENT_TOL && p == current && bp != current)
                }
            };
            if better {
                best = Some((p, cost));
            }
        };
        if market.provider(l).can_stay_remote() {
            consider(Placement::Remote, market.provider(l).remote_cost);
        }
        for i in market.cloudlets() {
            if market.fits(l, residual[i.index()]) {
                let cost = market.cloudlet(i).congestion_price()
                    * (load[i.index()] + self.weights[l.index()])
                    + market.provider(l).instantiation_cost
                    + market.update_cost(l, i);
                consider(Placement::Cloudlet(i), cost);
            }
        }
        best
    }

    /// Round-robin best-response dynamics; returns moves on convergence.
    pub fn run_dynamics(&self, profile: &mut Profile, max_rounds: usize) -> Option<usize> {
        let mut moves = 0;
        for _ in 0..max_rounds {
            let mut improved = false;
            for (l, _) in profile.clone().iter() {
                let cur = self.provider_cost(profile, l);
                if let Some((p, cost)) = self.best_response(profile, l) {
                    if p != profile.placement(l) && cost < cur - IMPROVEMENT_TOL {
                        profile.set(l, p);
                        moves += 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                return Some(moves);
            }
        }
        None
    }

    /// `true` if no provider can unilaterally improve.
    pub fn is_nash(&self, profile: &Profile) -> bool {
        self.market.providers().all(|l| {
            let cur = self.provider_cost(profile, l);
            match self.best_response(profile, l) {
                Some((p, cost)) => p == profile.placement(l) || cost >= cur - IMPROVEMENT_TOL,
                None => true,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_topology::CloudletId;

    fn market(demands: &[(f64, f64)]) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.4, 0.4));
        for &(a, bd) in demands {
            b = b.provider(ProviderSpec::new(a, bd, 0.8, 25.0));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn weights_follow_footprints() {
        let m = market(&[(4.0, 10.0), (1.0, 5.0), (2.0, 20.0)]);
        let g = WeightedGame::new(&m);
        assert!((g.weight(ProviderId(0)) - 1.0).abs() < 1e-12); // a-max
        assert!((g.weight(ProviderId(2)) - 1.0).abs() < 1e-12); // b-max
        assert!(g.weight(ProviderId(1)) < 1.0);
    }

    #[test]
    fn dynamics_converge_to_nash() {
        let m = market(&[
            (4.0, 10.0),
            (1.0, 5.0),
            (2.0, 20.0),
            (3.0, 8.0),
            (1.5, 12.0),
        ]);
        let g = WeightedGame::new(&m);
        let mut p = Profile::all_remote(5);
        let moves = g.run_dynamics(&mut p, 10_000);
        assert!(moves.is_some());
        assert!(g.is_nash(&p));
        assert!(p.is_feasible(&m));
    }

    #[test]
    fn potential_is_exact() {
        // Every improving move decreases Φ by exactly the mover's gain.
        let m = market(&[(4.0, 10.0), (1.0, 5.0), (2.0, 20.0), (3.0, 8.0)]);
        let g = WeightedGame::new(&m);
        let mut p = Profile::all_remote(4);
        let mut phi = g.potential(&p);
        for _ in 0..50 {
            let mut moved = false;
            for (l, _) in p.clone().iter() {
                let cur = g.provider_cost(&p, l);
                if let Some((np, cost)) = g.best_response(&p, l) {
                    if np != p.placement(l) && cost < cur - IMPROVEMENT_TOL {
                        p.set(l, np);
                        let nphi = g.potential(&p);
                        let w = g.weight(l);
                        assert!(
                            ((phi - nphi) - w * (cur - cost)).abs() < 1e-9,
                            "weighted potential identity broken: dPhi {} vs w*dCost {}",
                            phi - nphi,
                            w * (cur - cost)
                        );
                        assert!(nphi < phi, "potential did not decrease");
                        phi = nphi;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn heavy_players_congest_more() {
        // One heavy + one light on the same cloudlet: the heavy provider's
        // presence raises the light one's cost more than vice versa.
        let m = market(&[(4.0, 40.0), (1.0, 5.0)]);
        let g = WeightedGame::new(&m);
        let both = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
        ]);
        let mut only_light = both.clone();
        only_light.set(ProviderId(0), Placement::Remote);
        let mut only_heavy = both.clone();
        only_heavy.set(ProviderId(1), Placement::Remote);
        let light_with_heavy = g.provider_cost(&both, ProviderId(1));
        let light_alone = g.provider_cost(&only_light, ProviderId(1));
        let heavy_with_light = g.provider_cost(&both, ProviderId(0));
        let heavy_alone = g.provider_cost(&only_heavy, ProviderId(0));
        assert!(light_with_heavy - light_alone > heavy_with_light - heavy_alone);
    }

    #[test]
    fn uniform_weights_recover_unweighted_game() {
        let m = market(&[(2.0, 10.0), (2.0, 10.0), (2.0, 10.0)]);
        let g = WeightedGame::with_weights(&m, vec![1.0; 3]);
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Remote,
        ]);
        for l in m.providers() {
            assert!((g.provider_cost(&p, l) - p.provider_cost(&m, l)).abs() < 1e-12);
        }
        assert!((g.social_cost(&p) - p.social_cost(&m)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one weight per provider")]
    fn weight_length_checked() {
        let m = market(&[(1.0, 5.0)]);
        let _ = WeightedGame::with_weights(&m, vec![1.0, 2.0]);
    }
}
