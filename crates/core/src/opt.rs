//! Exact social optimum for small markets (branch and bound).
//!
//! Used to measure empirical Price of Anarchy ([`crate::poa`]) and to
//! validate the `Appro` approximation on instances where the true optimum
//! is computable. Exponential in the provider count — intended for
//! `providers ≤ ~12`.

use mec_topology::CloudletId;

use crate::error::CoreError;
use crate::model::Market;
use crate::strategy::{Placement, Profile};

/// Maximum provider count accepted by [`social_optimum`].
pub const MAX_PROVIDERS: usize = 14;

/// Result of [`social_optimum`].
#[derive(Debug, Clone)]
pub struct Optimum {
    /// A socially optimal, capacity-feasible profile.
    pub profile: Profile,
    /// Its social cost (Eq. 6).
    pub social_cost: f64,
}

/// Computes the exact minimum social cost over all capacity-feasible
/// profiles (including remote placements where allowed).
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no feasible profile exists.
///
/// # Panics
///
/// Panics if the market has more than [`MAX_PROVIDERS`] providers.
pub fn social_optimum(market: &Market) -> Result<Optimum, CoreError> {
    let n = market.provider_count();
    assert!(
        n <= MAX_PROVIDERS,
        "exact optimum limited to {MAX_PROVIDERS} providers, got {n}"
    );
    let m = market.cloudlet_count();

    // Optimistic per-provider bound: cheapest congestion-one placement.
    let lower: Vec<f64> = market
        .providers()
        .map(|l| {
            let mut best = market.provider(l).remote_cost;
            for i in market.cloudlets() {
                best = best.min(market.caching_cost(l, i, 1));
            }
            best
        })
        .collect();
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + lower[i];
    }

    struct Search<'a> {
        market: &'a Market,
        suffix: Vec<f64>,
        best_cost: f64,
        best: Option<Vec<Placement>>,
        current: Vec<Placement>,
        counts: Vec<usize>,
        free: Vec<(f64, f64)>,
    }

    impl Search<'_> {
        /// Social cost of a *complete* prefix assignment is recomputed at the
        /// leaf; during search we track an additive surrogate that lower
        /// bounds it (each placement priced at the congestion level at
        /// insertion time, which undercounts the final quadratic term).
        fn dfs(&mut self, idx: usize, partial: f64) {
            let n = self.market.provider_count();
            if partial + self.suffix[idx] >= self.best_cost - 1e-12 {
                return;
            }
            if idx == n {
                let profile = Profile::new(self.current.clone());
                let cost = profile.social_cost(self.market);
                if cost < self.best_cost - 1e-12 {
                    self.best_cost = cost;
                    self.best = Some(self.current.clone());
                }
                return;
            }
            let l = crate::model::ProviderId(idx);
            let spec = self.market.provider(l).clone();
            // Cloudlet placements.
            for i in self.market.cloudlets() {
                let free = self.free[i.index()];
                if spec.compute_demand <= free.0 + 1e-9 && spec.bandwidth_demand <= free.1 + 1e-9 {
                    let c = i.index();
                    self.counts[c] += 1;
                    self.free[c].0 -= spec.compute_demand;
                    self.free[c].1 -= spec.bandwidth_demand;
                    self.current[idx] = Placement::Cloudlet(CloudletId(c));
                    let add = self.market.caching_cost(l, CloudletId(c), self.counts[c]);
                    self.dfs(idx + 1, partial + add);
                    self.counts[c] -= 1;
                    self.free[c].0 += spec.compute_demand;
                    self.free[c].1 += spec.bandwidth_demand;
                }
            }
            // Remote placement.
            if spec.can_stay_remote() {
                self.current[idx] = Placement::Remote;
                self.dfs(idx + 1, partial + spec.remote_cost);
            }
        }
    }

    let mut s = Search {
        market,
        suffix,
        best_cost: f64::INFINITY,
        best: None,
        current: vec![Placement::Remote; n],
        counts: vec![0; m],
        free: market
            .cloudlets()
            .map(|i| {
                let c = market.cloudlet(i);
                (c.compute_capacity, c.bandwidth_capacity)
            })
            .collect(),
    };
    s.dfs(0, 0.0);
    let best_cost = s.best_cost;
    s.best
        .map(|placements| Optimum {
            profile: Profile::new(placements),
            social_cost: best_cost,
        })
        .ok_or(CoreError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};

    fn tiny() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.2, 0.2))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .uniform_update_cost(0.2)
            .build()
    }

    #[test]
    fn optimum_is_feasible_and_minimal_vs_brute_force() {
        let m = tiny();
        let opt = social_optimum(&m).unwrap();
        assert!(opt.profile.is_feasible(&m));

        // Brute force over all 3^3 placements (2 cloudlets + remote).
        let mut best = f64::INFINITY;
        for mask in 0..27usize {
            let mut x = mask;
            let mut placements = Vec::new();
            for _ in 0..3 {
                placements.push(match x % 3 {
                    0 => Placement::Cloudlet(CloudletId(0)),
                    1 => Placement::Cloudlet(CloudletId(1)),
                    _ => Placement::Remote,
                });
                x /= 3;
            }
            let p = Profile::new(placements);
            if p.is_feasible(&m) {
                best = best.min(p.social_cost(&m));
            }
        }
        assert!((opt.social_cost - best).abs() < 1e-9);
    }

    #[test]
    fn optimum_spreads_to_avoid_congestion() {
        // Two identical cloudlets, two providers: optimum splits them.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 1.0, 1.0))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 1.0, 1.0))
            .provider(ProviderSpec::new(1.0, 5.0, 0.5, 100.0))
            .provider(ProviderSpec::new(1.0, 5.0, 0.5, 100.0))
            .uniform_update_cost(0.1)
            .build();
        let opt = social_optimum(&m).unwrap();
        let sigma = opt.profile.congestion(&m);
        assert_eq!(sigma, vec![1, 1]);
    }

    #[test]
    fn infeasible_when_remote_forbidden_and_no_room() {
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(1.0, 5.0, 0.1, 0.1))
            .provider(ProviderSpec::new(2.0, 1.0, 1.0, f64::INFINITY))
            .uniform_update_cost(0.0)
            .build();
        assert_eq!(social_optimum(&m).unwrap_err(), CoreError::Infeasible);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn rejects_large_markets() {
        let mut b = Market::builder().cloudlet(CloudletSpec::new(100.0, 100.0, 0.1, 0.1));
        for _ in 0..MAX_PROVIDERS + 1 {
            b = b.provider(ProviderSpec::new(1.0, 1.0, 1.0, 1.0));
        }
        let m = b.uniform_update_cost(0.0).build();
        let _ = social_optimum(&m);
    }
}
