//! Incentives for coordination: are the bulk-lease contracts viable?
//!
//! The paper's leader "has bulk-lease contracts with several large-scale
//! network service providers; it thus can coordinate them as long as
//! requirements in the bulk-lease contracts are met" (Section II-D). This
//! module quantifies that requirement: a coordinated provider pinned to the
//! `Appro` placement may *envy* the deviation a selfish player would take.
//! The minimal per-provider discount that removes the envy is the price of
//! its obedience; coordination is **budget-feasible** when the total
//! subsidy is no larger than the social-cost saving coordination produces.

use crate::lcf::LcfOutcome;
use crate::model::{Market, ProviderId};
use crate::state::GameState;

/// Envy analysis of one LCF outcome.
#[derive(Debug, Clone)]
pub struct IncentiveReport {
    /// Per coordinated provider: `(provider, current cost, best deviation
    /// cost, required discount)`. Discount is zero when obedience is
    /// already a best response.
    pub discounts: Vec<(ProviderId, f64, f64, f64)>,
    /// Sum of all required discounts (the leader's subsidy bill).
    pub total_subsidy: f64,
    /// Social-cost saving of this outcome versus full anarchy
    /// (`lcf` with ξ = 0 on the same market).
    pub coordination_saving: f64,
}

impl IncentiveReport {
    /// `true` if the subsidies are covered by the saving they enable.
    pub fn budget_feasible(&self) -> bool {
        self.total_subsidy <= self.coordination_saving + 1e-9
    }

    /// Number of coordinated providers that actually envy a deviation.
    pub fn envious_count(&self) -> usize {
        self.discounts
            .iter()
            .filter(|(_, _, _, d)| *d > 1e-9)
            .count()
    }
}

/// Computes the minimal obedience discounts for `outcome`'s coordinated
/// providers and compares the subsidy bill with the saving coordination
/// buys over full anarchy.
///
/// # Errors
///
/// Propagates [`crate::CoreError`] from the anarchy benchmark run.
pub fn incentive_report(
    market: &Market,
    outcome: &LcfOutcome,
) -> Result<IncentiveReport, crate::CoreError> {
    // Share one incremental state across all coordinated providers: each
    // envy check is then an O(M) allocation-free best-response query.
    let state = GameState::new(market, outcome.profile.clone());
    let mut discounts = Vec::with_capacity(outcome.coordinated.len());
    let mut total = 0.0;
    for &l in &outcome.coordinated {
        let current = state.provider_cost(l);
        let deviation = state.best_response(l).map(|(_, c)| c).unwrap_or(current);
        let discount = (current - deviation).max(0.0);
        total += discount;
        discounts.push((l, current, deviation, discount));
    }

    // Full anarchy on the same market: ξ = 0.
    let anarchy = crate::lcf::lcf(market, &crate::lcf::LcfConfig::new(0.0))?;
    let coordination_saving = (anarchy.social_cost - outcome.social_cost).max(0.0);

    Ok(IncentiveReport {
        discounts,
        total_subsidy: total,
        coordination_saving,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcf::{lcf, LcfConfig};
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_num::assert_approx_eq;

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.7, 0.7))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.4, 0.4))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.2, 0.2));
        for k in 0..n {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 3) as f64,
                5.0 + (k % 4) as f64,
                0.6,
                18.0,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn discounts_are_nonnegative_and_bounded_by_current_cost() {
        let m = market(12);
        let out = lcf(&m, &LcfConfig::new(0.7)).unwrap();
        let rep = incentive_report(&m, &out).unwrap();
        assert_eq!(rep.discounts.len(), out.coordinated.len());
        for (l, current, deviation, discount) in &rep.discounts {
            assert!(*discount >= 0.0, "{l}");
            assert!(*discount <= *current + 1e-9, "{l}");
            assert!((*discount - (current - deviation).max(0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn no_coordination_means_no_subsidy() {
        let m = market(10);
        let out = lcf(&m, &LcfConfig::new(0.0)).unwrap();
        let rep = incentive_report(&m, &out).unwrap();
        assert!(rep.discounts.is_empty());
        assert_approx_eq!(rep.total_subsidy, 0.0, 1e-12);
        // Anarchy vs anarchy: no saving either.
        assert!(rep.coordination_saving < 1e-9);
    }

    #[test]
    fn subsidy_bill_reported_against_saving() {
        let m = market(15);
        let out = lcf(&m, &LcfConfig::new(0.8)).unwrap();
        let rep = incentive_report(&m, &out).unwrap();
        assert!(rep.total_subsidy.is_finite());
        assert!(rep.coordination_saving >= 0.0);
        // envious_count consistent with the discount list.
        let manual = rep
            .discounts
            .iter()
            .filter(|(_, _, _, d)| *d > 1e-9)
            .count();
        assert_eq!(rep.envious_count(), manual);
    }

    #[test]
    fn obedient_providers_need_no_discount_at_equilibrium_quality_pins() {
        // With everyone coordinated into the polished Appro solution and a
        // near-optimal placement, most providers are close to their best
        // response; discounts stay small relative to costs.
        let m = market(12);
        let out = lcf(&m, &LcfConfig::new(1.0)).unwrap();
        let rep = incentive_report(&m, &out).unwrap();
        let total_cost: f64 = rep.discounts.iter().map(|(_, c, _, _)| c).sum();
        assert!(
            rep.total_subsidy <= 0.5 * total_cost,
            "subsidy {} vs cost {}",
            rep.total_subsidy,
            total_cost
        );
    }
}
