//! Social-cost local search: single-provider moves that reduce Eq. (6).
//!
//! The optimal-restricted Stackelberg framework assumes the leader holds a
//! near-optimal solution to pin coordinated players to. Shmoys–Tardos
//! rounding leaves a small constant-factor slack; this polish removes most
//! of it by greedily applying the single-provider relocation with the
//! largest *social*-cost reduction (capacity-respecting) until none exists.
//!
//! The move deltas internalize the congestion externality: relocating `l`
//! from cloudlet `X` to `Y` changes the social cost by
//!
//! ```text
//! Δ = p_X·(1 − 2σ_X) + p_Y·(2σ_Y + 1) + fixed_{l,Y} − fixed_{l,X}
//! ```
//!
//! (`p_i = α_i + β_i`, σ counted before the move, `l ∈ σ_X`), which is what
//! a *selfish* player does **not** see — a selfish deviation only prices its
//! own `p·σ` term. The gap between the two is exactly the anarchy the
//! Stackelberg coordination suppresses.

use crate::model::{Market, ProviderId};
use crate::state::GameState;
use crate::strategy::{Placement, Profile};

/// Result of a local-search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchResult {
    /// Improving moves applied.
    pub moves: usize,
    /// `true` if the search reached a local optimum (no improving move).
    pub converged: bool,
}

const TOL: f64 = 1e-9;

/// Social-cost change if `l` moves from its current placement to `to`,
/// with `sigma` the current congestion counts (including `l`).
fn social_delta(
    market: &Market,
    profile: &Profile,
    sigma: &[usize],
    l: ProviderId,
    to: Placement,
) -> f64 {
    let from = profile.placement(l);
    if from == to {
        return 0.0;
    }
    let fixed = |p: Placement| -> f64 {
        match p {
            Placement::Cloudlet(i) => {
                market.provider(l).instantiation_cost + market.update_cost(l, i)
            }
            Placement::Remote => market.provider(l).remote_cost,
        }
    };
    let mut delta = fixed(to) - fixed(from);
    if let Placement::Cloudlet(x) = from {
        let p = market.cloudlet(x).congestion_price();
        let s = sigma[x.index()] as f64;
        delta += p * (1.0 - 2.0 * s);
    }
    if let Placement::Cloudlet(y) = to {
        let p = market.cloudlet(y).congestion_price();
        let s = sigma[y.index()] as f64;
        delta += p * (2.0 * s + 1.0);
    }
    delta
}

/// Greedy best-improvement local search on the social cost.
///
/// Only providers marked in `movable` are relocated; all moves respect the
/// cloudlet capacities. Stops at a local optimum or after `max_moves`.
///
/// # Panics
///
/// Panics if `movable.len() != profile.len()`.
pub fn social_local_search(
    market: &Market,
    profile: &mut Profile,
    movable: &[bool],
    max_moves: usize,
) -> LocalSearchResult {
    assert_eq!(movable.len(), profile.len(), "movable mask length mismatch");
    let _span = mec_obs::span("core.local_search.run");
    // The incremental state keeps congestion and residuals current across
    // moves, so each pass reads them in O(1) instead of recomputing and
    // reallocating both vectors per outer iteration.
    let taken = std::mem::replace(profile, Profile::all_remote(1));
    let mut state = GameState::new(market, taken);
    let mut moves = 0;
    let result = loop {
        if moves >= max_moves {
            break LocalSearchResult {
                moves,
                converged: false,
            };
        }
        let mut best: Option<(ProviderId, Placement, f64)> = None;
        for (k, &mv) in movable.iter().enumerate() {
            if !mv {
                continue;
            }
            let l = ProviderId(k);
            let current = state.placement(l);
            // Remote candidate.
            if market.provider(l).can_stay_remote() && current != Placement::Remote {
                let d = social_delta(
                    market,
                    state.profile(),
                    state.congestion_counts(),
                    l,
                    Placement::Remote,
                );
                if d < -TOL && best.as_ref().is_none_or(|(_, _, bd)| d < *bd) {
                    best = Some((l, Placement::Remote, d));
                }
            }
            // Cloudlet candidates.
            for i in market.cloudlets() {
                if current == Placement::Cloudlet(i) {
                    continue;
                }
                // `l` is not currently in `i`, so the residual is correct.
                if !market.fits(l, state.residual(i)) {
                    continue;
                }
                let d = social_delta(
                    market,
                    state.profile(),
                    state.congestion_counts(),
                    l,
                    Placement::Cloudlet(i),
                );
                if d < -TOL && best.as_ref().is_none_or(|(_, _, bd)| d < *bd) {
                    best = Some((l, Placement::Cloudlet(i), d));
                }
            }
        }
        match best {
            Some((l, to, _)) => {
                state.apply_move(l, to);
                moves += 1;
            }
            None => {
                break LocalSearchResult {
                    moves,
                    converged: true,
                };
            }
        }
    };
    *profile = state.into_profile();
    mec_obs::counter_add("core.local_search.moves", result.moves as u64);
    #[cfg(feature = "verify")]
    {
        let mut cert = crate::verify::Certificate::new("local-search profile");
        cert.extend(crate::verify::check_capacity(market, profile));
        cert.assert_valid();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_topology::CloudletId;

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.8, 0.8))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.8, 0.8));
        for _ in 0..n {
            b = b.provider(ProviderSpec::new(1.0, 5.0, 0.5, 50.0));
        }
        b.uniform_update_cost(0.1).build()
    }

    #[test]
    fn delta_matches_recomputation() {
        let m = market(6);
        let mut profile = Profile::all_remote(6);
        for k in 0..4 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let sigma = profile.congestion(&m);
        let before = profile.social_cost(&m);
        for (l, _) in profile.clone().iter() {
            for to in [
                Placement::Remote,
                Placement::Cloudlet(CloudletId(0)),
                Placement::Cloudlet(CloudletId(1)),
            ] {
                let d = social_delta(&m, &profile, &sigma, l, to);
                let mut trial = profile.clone();
                trial.set(l, to);
                let actual = trial.social_cost(&m) - before;
                assert!(
                    (d - actual).abs() < 1e-9,
                    "delta {d} vs actual {actual} for {l} -> {to}"
                );
            }
        }
    }

    #[test]
    fn balances_identical_cloudlets() {
        let m = market(8);
        let mut profile = Profile::all_remote(8);
        for k in 0..8 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let movable = vec![true; 8];
        let res = social_local_search(&m, &mut profile, &movable, 1000);
        assert!(res.converged);
        let sigma = profile.congestion(&m);
        assert_eq!(sigma, vec![4, 4]);
    }

    #[test]
    fn never_increases_social_cost() {
        let m = market(7);
        let mut profile = Profile::all_remote(7);
        for k in 0..5 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let before = profile.social_cost(&m);
        let movable = vec![true; 7];
        social_local_search(&m, &mut profile, &movable, 1000);
        assert!(profile.social_cost(&m) <= before + 1e-9);
    }

    #[test]
    fn respects_movable_mask() {
        let m = market(4);
        let mut profile = Profile::all_remote(4);
        for k in 0..4 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let movable = vec![false, false, true, true];
        social_local_search(&m, &mut profile, &movable, 1000);
        assert_eq!(
            profile.placement(ProviderId(0)),
            Placement::Cloudlet(CloudletId(0))
        );
        assert_eq!(
            profile.placement(ProviderId(1)),
            Placement::Cloudlet(CloudletId(0))
        );
    }

    #[test]
    fn respects_capacity() {
        // Tiny second cloudlet: nothing may move into it.
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 1.0, 1.0))
            .cloudlet(CloudletSpec::new(0.5, 1.0, 0.0, 0.0));
        for _ in 0..4 {
            b = b.provider(ProviderSpec::new(1.0, 5.0, 0.5, 50.0));
        }
        let m = b.uniform_update_cost(0.1).build();
        let mut profile = Profile::all_remote(4);
        for k in 0..4 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let movable = vec![true; 4];
        social_local_search(&m, &mut profile, &movable, 1000);
        assert!(profile.is_feasible(&m));
        assert_eq!(profile.congestion(&m)[1], 0);
    }

    #[test]
    fn move_cap_respected() {
        let m = market(8);
        let mut profile = Profile::all_remote(8);
        for k in 0..8 {
            profile.set(ProviderId(k), Placement::Cloudlet(CloudletId(0)));
        }
        let movable = vec![true; 8];
        let res = social_local_search(&m, &mut profile, &movable, 1);
        assert_eq!(res.moves, 1);
        assert!(!res.converged);
    }
}
