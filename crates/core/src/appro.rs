//! Algorithm 1 — `Appro`: the approximation algorithm for non-selfish
//! players (paper Section III-B).
//!
//! Steps:
//! 1. Split each cloudlet `CL_i` into `n_i = min(⌊C_i/a_max⌋, ⌊B_i/b_max⌋)`
//!    virtual cloudlets, each able to host any single service (Eq. 7).
//! 2. Treat virtual cloudlets as GAP knapsacks with the congestion-free cost
//!    `α_i + β_i + c_l_ins + c_{l,i}_bdw` (Eq. 9).
//! 3. Solve the GAP with the Shmoys–Tardos approximation \[34\].
//! 4. Merge: every service assigned to a virtual cloudlet of `CL_i` is
//!    cached at `CL_i`.
//!
//! Weights are normalized so a slot has capacity 1 and service `l` weighs
//! `max(A_l/a_max, B_l/b_max) ≤ 1` — this folds the two resource dimensions
//! into the single GAP dimension exactly as the paper's
//! `max{a_max, b_max}` slot capacity does, but without mixing units.
//!
//! Two slot-pricing modes are provided:
//! * [`SlotPricing::MarginalCongestion`] (default) — the `k`-th virtual
//!   cloudlet of `CL_i` is priced at `(α_i+β_i)·(2k−1) + c_l_ins +
//!   c_{l,i}_bdw`. Since `Σ_{k=1..σ}(2k−1) = σ²`, filling `σ` slots of a
//!   cloudlet costs exactly the true congestion charge `(α_i+β_i)·σ²` —
//!   the GAP objective *internalizes* congestion while each individual
//!   knapsack stays congestion-free, so the Shmoys–Tardos machinery still
//!   applies verbatim.
//! * [`SlotPricing::Flat`] — the paper-literal Eq. (9) cost
//!   `α_i + β_i + c_l_ins + c_{l,i}_bdw` for every slot. Congestion is
//!   ignored during assignment (it only appears in the `2δκ` analysis);
//!   kept as the `ablation_gap_pricing` baseline.
//!
//! Two bin layouts are provided for the flat pricing:
//! * [`SplitMode::MergedSlots`] — one GAP bin per cloudlet with capacity
//!   `n_i` normalized units (equivalent after the merge step, faster);
//! * [`SplitMode::PerSlot`] — literal virtual-cloudlet bins.
//!
//! Marginal pricing always uses per-slot bins (slot identity carries the
//! price).

use mec_gap::{shmoys_tardos, GapInstance, LpBackend, FORBIDDEN};
use mec_topology::CloudletId;

use crate::error::CoreError;
use crate::model::{Market, ProviderId};
use crate::strategy::{Placement, Profile};

/// How cloudlets are split into GAP bins (only meaningful with
/// [`SlotPricing::Flat`]; marginal pricing always uses per-slot bins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMode {
    /// One bin per cloudlet with capacity `n_i` (equivalent after merging).
    #[default]
    MergedSlots,
    /// One bin per virtual cloudlet with capacity 1 (paper-literal).
    PerSlot,
}

/// How virtual-cloudlet slots are priced in the GAP reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotPricing {
    /// Price slot `k` of `CL_i` at `(α_i+β_i)·(2k−1)` so the GAP objective
    /// equals the true social cost when slots hold one service each.
    #[default]
    MarginalCongestion,
    /// The paper-literal flat Eq. (9) cost (congestion-blind).
    Flat,
}

/// Configuration of [`appro`].
#[derive(Debug, Clone, Default)]
pub struct ApproConfig {
    /// Bin construction mode (flat pricing only).
    pub split: SplitMode,
    /// Slot pricing mode.
    pub pricing: SlotPricing,
    /// Repair real-capacity violations introduced by the rounding by moving
    /// the cheapest-to-move services out of overloaded cloudlets.
    /// Lemma 1 assumes capacities far exceed demands; with tight capacities
    /// the Shmoys–Tardos augmentation can overflow, and the repair restores
    /// strict feasibility. Enabled by default.
    pub repair_capacity: bool,
    /// Polish the rounded assignment with a social-cost local search
    /// ([`crate::local_search`]) so the leader's restricted strategy is as
    /// close to the social optimum as single-provider moves allow. Enabled
    /// by default; disable to study the raw Shmoys–Tardos output.
    pub polish: bool,
    /// Which relaxation backend solves the GAP LP ([`LpBackend::Auto`]
    /// by default: the transportation fast path — Appro's instances always
    /// qualify — with the revised simplex as the general fallback). Forcing
    /// `Revised` or `Dense` is the benchmarking/differential-testing hook.
    pub lp_backend: LpBackend,
}

impl ApproConfig {
    /// Default configuration (marginal-congestion pricing, repair on).
    pub fn new() -> Self {
        ApproConfig {
            split: SplitMode::MergedSlots,
            pricing: SlotPricing::MarginalCongestion,
            repair_capacity: true,
            polish: true,
            lp_backend: LpBackend::Auto,
        }
    }

    /// The paper-literal configuration: flat Eq. (9) pricing, no polish.
    pub fn paper_flat() -> Self {
        ApproConfig {
            split: SplitMode::MergedSlots,
            pricing: SlotPricing::Flat,
            repair_capacity: true,
            polish: false,
            lp_backend: LpBackend::Auto,
        }
    }

    /// This configuration with the given relaxation backend.
    pub fn with_lp_backend(mut self, backend: LpBackend) -> Self {
        self.lp_backend = backend;
        self
    }
}

/// Output of [`appro`].
#[derive(Debug, Clone)]
pub struct ApproSolution {
    /// The computed placement of every provider.
    pub profile: Profile,
    /// LP optimum of the GAP relaxation under the configured slot pricing.
    /// With [`SlotPricing::Flat`] this is Lemma 2's `C'` lower bound; with
    /// marginal pricing it is the relaxation of the social-cost surrogate.
    pub lp_lower_bound: f64,
    /// Congestion-free (flat) cost of the assignment — `C'` in Lemma 2.
    pub flat_cost: f64,
    /// True social cost (with congestion) of the profile — `C` in Lemma 2.
    pub social_cost: f64,
    /// Per-cloudlet virtual-cloudlet counts `n_i` (Eq. 7).
    pub virtual_counts: Vec<usize>,
}

/// Computes `n_i` for every cloudlet (Eq. 7). Cloudlets too small to host
/// even the largest service get `n_i = 0` and are excluded from the GAP.
pub fn virtual_cloudlet_counts(market: &Market) -> Vec<usize> {
    let a_max = market.max_compute_demand();
    let b_max = market.max_bandwidth_demand();
    market
        .cloudlets()
        .map(|i| {
            let c = market.cloudlet(i);
            let by_compute = if a_max > 0.0 {
                (c.compute_capacity / a_max).floor() as usize
            } else {
                usize::MAX
            };
            let by_bandwidth = if b_max > 0.0 {
                (c.bandwidth_capacity / b_max).floor() as usize
            } else {
                usize::MAX
            };
            by_compute.min(by_bandwidth)
        })
        .collect()
}

/// Normalized single-dimension weight of provider `l`:
/// `max(A_l/a_max, B_l/b_max)`.
fn normalized_weight(market: &Market, l: ProviderId, a_max: f64, b_max: f64) -> f64 {
    let p = market.provider(l);
    let wa = if a_max > 0.0 {
        p.compute_demand / a_max
    } else {
        0.0
    };
    let wb = if b_max > 0.0 {
        p.bandwidth_demand / b_max
    } else {
        0.0
    };
    wa.max(wb)
}

/// The paper's approximation-ratio bound `2·δ·κ` (Lemma 2).
pub fn approximation_ratio_bound(market: &Market) -> f64 {
    2.0 * market.delta() * market.kappa()
}

/// Shadow price of each cloudlet's (virtual) capacity at the optimum of
/// the flat GAP relaxation: the marginal social-cost saving per additional
/// virtual-cloudlet slot. Zero for cloudlets whose capacity is slack —
/// the infrastructure provider's signal for *where* expanding a cloudlet
/// is worth money.
///
/// # Errors
///
/// Propagates [`CoreError`] from the GAP relaxation.
pub fn cloudlet_capacity_values(market: &Market) -> Result<Vec<f64>, CoreError> {
    let n = market.provider_count();
    let a_max = market.max_compute_demand();
    let b_max = market.max_bandwidth_demand();
    let counts = virtual_cloudlet_counts(market);

    // Merged-flat bins: one per usable cloudlet, plus remote.
    let mut bin_cloudlet = Vec::new();
    for i in market.cloudlets() {
        if counts[i.index()] >= 1 {
            bin_cloudlet.push(i);
        }
    }
    let any_remote = market
        .providers()
        .any(|l| market.provider(l).can_stay_remote());
    let bins = bin_cloudlet.len() + usize::from(any_remote);
    if bins == 0 {
        return Err(CoreError::Infeasible);
    }
    let mut inst = GapInstance::new(n, bins);
    let mut total_weight = 0.0;
    for l in market.providers() {
        let w = normalized_weight(market, l, a_max, b_max);
        total_weight += w;
        inst.set_item_weight(l.index(), w);
        for (bi, &i) in bin_cloudlet.iter().enumerate() {
            inst.set_cost(l.index(), bi, market.flat_cost(l, i));
        }
        if any_remote {
            let r = market.provider(l).remote_cost;
            inst.set_cost(
                l.index(),
                bins - 1,
                if r.is_finite() { r } else { FORBIDDEN },
            );
        }
    }
    for (bi, &i) in bin_cloudlet.iter().enumerate() {
        inst.set_capacity(bi, counts[i.index()] as f64);
    }
    if any_remote {
        inst.set_capacity(bins - 1, total_weight + 1.0);
    }

    let prices = mec_gap::lp_relax::capacity_shadow_prices(&inst)?;
    let mut out = vec![0.0; market.cloudlet_count()];
    for (bi, &i) in bin_cloudlet.iter().enumerate() {
        out[i.index()] = prices[bi];
    }
    Ok(out)
}

/// Runs Algorithm 1 on `market`.
///
/// # Errors
///
/// * [`CoreError::NoFeasiblePlacement`] — a provider fits nowhere and may
///   not stay remote.
/// * [`CoreError::Infeasible`] — total demand exceeds what the virtual
///   cloudlets plus remote options can hold.
/// * [`CoreError::Gap`] — numerical failure in the GAP substrate.
///
/// # Examples
///
/// ```
/// use mec_core::appro::{appro, ApproConfig};
/// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
///
/// let market = Market::builder()
///     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
///     .provider(ProviderSpec::new(2.0, 10.0, 1.0, 50.0))
///     .uniform_update_cost(0.2)
///     .build();
/// let sol = appro(&market, &ApproConfig::new())?;
/// assert!(sol.profile.is_feasible(&market));
/// # Ok::<(), mec_core::CoreError>(())
/// ```
pub fn appro(market: &Market, config: &ApproConfig) -> Result<ApproSolution, CoreError> {
    let _span_total = mec_obs::span("appro.total");
    mec_obs::counter_add("appro.runs", 1);
    let n = market.provider_count();
    let a_max = market.max_compute_demand();
    let b_max = market.max_bandwidth_demand();
    let counts = {
        let _span = mec_obs::span("appro.split");
        virtual_cloudlet_counts(market)
    };
    mec_obs::counter_add("appro.virtual_slots", counts.iter().sum::<usize>() as u64);

    // Bin layout. Each bin is a virtual cloudlet (or the remote sink).
    #[derive(Debug, Clone, Copy)]
    struct Bin {
        cloudlet: Option<CloudletId>,
        /// 1-based slot index within its cloudlet (prices congestion).
        slot: usize,
        cap: f64,
    }
    let per_slot =
        config.pricing == SlotPricing::MarginalCongestion || config.split == SplitMode::PerSlot;
    let mut bins: Vec<Bin> = Vec::new();
    for i in market.cloudlets() {
        let n_i = counts[i.index()];
        if n_i == 0 {
            continue;
        }
        if per_slot {
            for k in 1..=n_i {
                bins.push(Bin {
                    cloudlet: Some(i),
                    slot: k,
                    cap: 1.0,
                });
            }
        } else {
            bins.push(Bin {
                cloudlet: Some(i),
                slot: 1,
                cap: n_i as f64,
            });
        }
    }
    let total_weight: f64 = market
        .providers()
        .map(|l| normalized_weight(market, l, a_max, b_max))
        .sum();
    let any_remote = market
        .providers()
        .any(|l| market.provider(l).can_stay_remote());
    if any_remote {
        bins.push(Bin {
            cloudlet: None,
            slot: 1,
            cap: total_weight + 1.0,
        });
    }
    if bins.is_empty() {
        return Err(CoreError::Infeasible);
    }

    let nbins = bins.len();
    let mut inst = GapInstance::new(n, nbins);
    for (bi, b) in bins.iter().enumerate() {
        inst.set_capacity(bi, b.cap);
    }

    // Pricing: fill one cost row per provider. Rows are independent, so on
    // large markets they fan out across the bounded worker pool over
    // disjoint `chunks_mut` slices; the result is positional, hence
    // identical at any worker count.
    let bins_ref = &bins;
    let price_row = |l_index: usize, row: &mut [f64]| {
        let l = ProviderId(l_index);
        for (bi, b) in bins_ref.iter().enumerate() {
            row[bi] = match b.cloudlet {
                Some(i) => {
                    let congestion_units = match config.pricing {
                        SlotPricing::MarginalCongestion => (2 * b.slot - 1) as f64,
                        SlotPricing::Flat => 1.0,
                    };
                    let cl = market.cloudlet(i);
                    cl.congestion_price() * congestion_units
                        + market.provider(l).instantiation_cost
                        + market.update_cost(l, i)
                }
                None => {
                    let r = market.provider(l).remote_cost;
                    if r.is_finite() {
                        r
                    } else {
                        FORBIDDEN
                    }
                }
            };
        }
    };
    let span_pricing = mec_obs::span("appro.pricing");
    let mut cost_matrix = vec![0.0; n * nbins];
    let workers = crate::game::par_workers(n * nbins, n);
    if workers <= 1 {
        for (l_index, row) in cost_matrix.chunks_mut(nbins).enumerate() {
            price_row(l_index, row);
        }
    } else {
        let rows_per = n.div_ceil(workers);
        crossbeam::thread::scope(|s| {
            for (w, chunk) in cost_matrix.chunks_mut(rows_per * nbins).enumerate() {
                let price_row = &price_row;
                s.spawn(move |_| {
                    for (k, row) in chunk.chunks_mut(nbins).enumerate() {
                        price_row(w * rows_per + k, row);
                    }
                });
            }
        })
        // lint: allow(panics) — propagate pricing-worker panics to the caller.
        .expect("pricing scope panicked");
    }
    for l in market.providers() {
        let w = normalized_weight(market, l, a_max, b_max);
        inst.set_item_weight(l.index(), w);
        for bi in 0..nbins {
            inst.set_cost(l.index(), bi, cost_matrix[l.index() * nbins + bi]);
        }
    }

    drop(span_pricing);

    let st = {
        let _span = mec_obs::span("appro.gap_solve");
        shmoys_tardos::solve_with(&inst, config.lp_backend)?
    };

    // Merge virtual cloudlets back to physical cloudlets (Algorithm 1 step 4).
    let span_merge = mec_obs::span("appro.merge");
    let mut placements = Vec::with_capacity(n);
    for l in market.providers() {
        let bin = st.assignment.bin_of(l.index());
        placements.push(match bins[bin].cloudlet {
            Some(i) => Placement::Cloudlet(i),
            None => Placement::Remote,
        });
    }
    let mut profile = Profile::new(placements);
    drop(span_merge);

    if config.repair_capacity {
        let _span = mec_obs::span("appro.repair");
        repair(market, &mut profile)?;
    }
    if config.polish {
        let _span = mec_obs::span("appro.polish");
        let movable = vec![true; n];
        crate::local_search::social_local_search(market, &mut profile, &movable, 10 * n);
    }

    let flat_cost = profile
        .iter()
        .map(|(l, p)| match p {
            Placement::Cloudlet(i) => market.flat_cost(l, i),
            Placement::Remote => market.provider(l).remote_cost,
        })
        .sum();
    let social_cost = profile.social_cost(market);
    // Appro's output is feasible and correctly priced, but deliberately NOT
    // an equilibrium — the Nash certificate only applies after dynamics.
    #[cfg(feature = "verify")]
    {
        let mut cert = crate::verify::Certificate::new("appro solution");
        cert.extend(crate::verify::check_capacity(market, &profile))
            .extend(crate::verify::check_cost_reconstruction(
                market,
                &profile,
                social_cost,
                1e-9,
            ));
        cert.assert_valid();
    }
    Ok(ApproSolution {
        profile,
        lp_lower_bound: st.lp_objective,
        flat_cost,
        social_cost,
        virtual_counts: counts,
    })
}

/// Moves services out of real-capacity-violating cloudlets, cheapest move
/// first, until the profile is feasible.
fn repair(market: &Market, profile: &mut Profile) -> Result<(), CoreError> {
    loop {
        let residual = profile.residual(market);
        let Some(overloaded) = market
            .cloudlets()
            .find(|i| residual[i.index()].0 < -1e-9 || residual[i.index()].1 < -1e-9)
        else {
            return Ok(());
        };
        // Providers cached at the overloaded cloudlet.
        let victims: Vec<ProviderId> = profile
            .iter()
            .filter(|(_, p)| *p == Placement::Cloudlet(overloaded))
            .map(|(l, _)| l)
            .collect();
        // Cheapest relocation across all victims and all destinations.
        let sigma = profile.congestion(market);
        let mut best: Option<(ProviderId, Placement, f64)> = None;
        for &l in &victims {
            let old = market.caching_cost(l, overloaded, sigma[overloaded.index()]);
            if market.provider(l).can_stay_remote() {
                let delta = market.provider(l).remote_cost - old;
                if best.is_none_or(|(_, _, d)| delta < d) {
                    best = Some((l, Placement::Remote, delta));
                }
            }
            for i in market.cloudlets() {
                if i == overloaded {
                    continue;
                }
                if market.fits(l, residual[i.index()]) {
                    let new = market.caching_cost(l, i, sigma[i.index()] + 1);
                    let delta = new - old;
                    if best.is_none_or(|(_, _, d)| delta < d) {
                        best = Some((l, Placement::Cloudlet(i), delta));
                    }
                }
            }
        }
        match best {
            Some((l, p, _)) => profile.set(l, p),
            None => return Err(CoreError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};

    fn market(providers: usize, cloudlets: usize) -> Market {
        let mut b = Market::builder();
        for k in 0..cloudlets {
            b = b.cloudlet(CloudletSpec::new(20.0, 100.0, 0.2 + 0.1 * k as f64, 0.3));
        }
        for k in 0..providers {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 3) as f64,
                5.0 + (k % 4) as f64 * 2.0,
                1.0,
                40.0,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn virtual_counts_follow_eq7() {
        let m = market(6, 2);
        // a_max = 3, b_max = 11; n_i = min(floor(20/3), floor(100/11)) = 6.
        assert_eq!(virtual_cloudlet_counts(&m), vec![6, 6]);
    }

    #[test]
    fn produces_feasible_profile() {
        let m = market(10, 3);
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert!(sol.profile.is_feasible(&m));
        assert_eq!(sol.profile.len(), 10);
    }

    #[test]
    fn flat_cost_at_most_lp_bound_without_repair() {
        // Shmoys–Tardos guarantee under flat pricing: the rounded
        // assignment's flat cost never exceeds the LP optimum.
        let m = market(8, 2);
        let sol = appro(
            &m,
            &ApproConfig {
                split: SplitMode::MergedSlots,
                pricing: SlotPricing::Flat,
                repair_capacity: false,
                polish: false,
                lp_backend: LpBackend::Auto,
            },
        )
        .unwrap();
        assert!(sol.flat_cost <= sol.lp_lower_bound + 1e-6);
    }

    #[test]
    fn per_slot_mode_agrees_on_small_markets() {
        let m = market(5, 2);
        let merged = appro(&m, &ApproConfig::paper_flat()).unwrap();
        let per_slot = appro(
            &m,
            &ApproConfig {
                split: SplitMode::PerSlot,
                pricing: SlotPricing::Flat,
                repair_capacity: true,
                polish: false,
                lp_backend: LpBackend::Auto,
            },
        )
        .unwrap();
        // Same LP bound (the relaxations are equivalent up to slot symmetry).
        assert!((merged.lp_lower_bound - per_slot.lp_lower_bound).abs() < 1e-6);
    }

    #[test]
    fn lp_backends_agree() {
        // Every backend solves the same relaxation to optimality, so the
        // LP bound is identical and the rounded assignments can differ only
        // by equal-cost ties.
        let m = market(12, 3);
        let auto = appro(&m, &ApproConfig::paper_flat()).unwrap();
        for backend in [
            LpBackend::Transportation,
            LpBackend::Revised,
            LpBackend::Dense,
        ] {
            let sol = appro(&m, &ApproConfig::paper_flat().with_lp_backend(backend)).unwrap();
            assert!(
                (sol.lp_lower_bound - auto.lp_lower_bound).abs() < 1e-6,
                "{backend:?}: bound {} vs auto {}",
                sol.lp_lower_bound,
                auto.lp_lower_bound
            );
            assert!(
                (sol.flat_cost - auto.flat_cost).abs() < 1e-6,
                "{backend:?}: flat cost {} vs auto {}",
                sol.flat_cost,
                auto.flat_cost
            );
            assert!(sol.profile.is_feasible(&m));
        }
    }

    #[test]
    fn marginal_pricing_spreads_congestion() {
        // Two identical cloudlets, several identical providers: marginal
        // pricing must balance them, flat pricing may pile everyone up.
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(50.0, 200.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(50.0, 200.0, 0.5, 0.5));
        for _ in 0..8 {
            b = b.provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0));
        }
        let m = b.uniform_update_cost(0.1).build();
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        let sigma = sol.profile.congestion(&m);
        assert_eq!(sigma, vec![4, 4], "marginal pricing should balance");
    }

    #[test]
    fn marginal_beats_flat_on_social_cost() {
        let m = market(12, 3);
        let marginal = appro(&m, &ApproConfig::new()).unwrap();
        let flat = appro(&m, &ApproConfig::paper_flat()).unwrap();
        assert!(
            marginal.social_cost <= flat.social_cost + 1e-9,
            "marginal {} > flat {}",
            marginal.social_cost,
            flat.social_cost
        );
    }

    #[test]
    fn social_cost_dominates_flat_cost() {
        // Every cached provider pays congestion >= 1 unit, so the true
        // social cost can never fall below the congestion-free flat cost.
        let m = market(6, 2);
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert!(sol.social_cost + 1e-9 >= sol.flat_cost);
    }

    #[test]
    fn prefers_cheap_cloudlets() {
        // One cheap cloudlet with room for everyone: all go there.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(100.0, 1000.0, 0.01, 0.01))
            .cloudlet(CloudletSpec::new(100.0, 1000.0, 5.0, 5.0))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 50.0))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 50.0))
            .uniform_update_cost(0.1)
            .build();
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        for (_, p) in sol.profile.iter() {
            assert_eq!(p, Placement::Cloudlet(CloudletId(0)));
        }
    }

    #[test]
    fn remote_used_when_cloudlets_tiny() {
        // Cloudlet can host nothing (n_i = 0): everyone must stay remote.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(0.5, 1.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 7.0))
            .uniform_update_cost(0.1)
            .build();
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert_eq!(sol.profile.placement(ProviderId(0)), Placement::Remote);
        assert!((sol.social_cost - 7.0).abs() < 1e-9);
    }

    #[test]
    fn error_when_nothing_fits_and_remote_forbidden() {
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(0.5, 1.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, f64::INFINITY))
            .uniform_update_cost(0.1)
            .build();
        let err = appro(&m, &ApproConfig::new()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NoFeasiblePlacement { .. } | CoreError::Infeasible
        ));
    }

    #[test]
    fn ratio_bound_positive() {
        let m = market(6, 2);
        let bound = approximation_ratio_bound(&m);
        assert!(bound > 0.0 && bound.is_finite());
        assert!((bound - 2.0 * m.delta() * m.kappa()).abs() < 1e-12);
    }

    #[test]
    fn social_cost_consistent_with_profile() {
        let m = market(9, 3);
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert!((sol.social_cost - sol.profile.social_cost(&m)).abs() < 1e-9);
    }

    #[test]
    fn capacity_values_positive_only_under_pressure() {
        // Loose market: capacities are slack, every value ~0.
        let loose = market(4, 3);
        let v = cloudlet_capacity_values(&loose).unwrap();
        assert!(v.iter().all(|p| *p < 1e-6), "loose {v:?}");

        // Tight market: one small cheap cloudlet everyone wants.
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(4.0, 20.0, 0.01, 0.01))
            .cloudlet(CloudletSpec::new(50.0, 250.0, 0.9, 0.9));
        for _ in 0..8 {
            b = b.provider(ProviderSpec::new(2.0, 10.0, 1.0, 50.0));
        }
        let tight = b.uniform_update_cost(0.1).build();
        let v = cloudlet_capacity_values(&tight).unwrap();
        assert!(
            v[0] > 1e-6,
            "cheap tight cloudlet should be valuable: {v:?}"
        );
    }

    #[test]
    fn repair_restores_feasibility_under_tight_capacity() {
        // Capacities barely above one service: rounding overflow possible.
        let mut b = Market::builder();
        for _ in 0..3 {
            b = b.cloudlet(CloudletSpec::new(2.5, 12.0, 0.1, 0.1));
        }
        for _ in 0..6 {
            b = b.provider(ProviderSpec::new(2.0, 10.0, 1.0, 20.0));
        }
        let m = b.uniform_update_cost(0.1).build();
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert!(sol.profile.is_feasible(&m));
    }
}
