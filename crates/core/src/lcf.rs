//! Algorithm 2 — `LCF`: the approximation-restricted Stackelberg strategy
//! (paper Section III-C).
//!
//! The infrastructure provider (leader):
//! 1. computes the `Appro` solution `ζ` for the whole market;
//! 2. coordinates the `⌊ξ·|N|⌋` providers whose `ζ`-placement is most
//!    expensive — *Largest Cost First* — pinning them to `ζ`;
//! 3. lets the remaining `(1−ξ)·|N|` selfish providers best-respond until a
//!    Nash equilibrium of the induced subgame is reached (exists and is
//!    reached by Lemma 3 / the Rosenthal potential).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::appro::{appro, ApproConfig, ApproSolution};
use crate::error::CoreError;
use crate::game::{BestResponseDynamics, Convergence, MoveOrder};
use crate::model::{Market, ProviderId};
use crate::state::GameState;
use crate::strategy::{Placement, Profile};

/// How the leader picks which providers to coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionRule {
    /// Coordinate the providers with the largest `Appro` cost (the paper's
    /// LCF rule).
    #[default]
    LargestCostFirst,
    /// Coordinate the providers with the smallest `Appro` cost
    /// (ablation `ablation_selection`).
    SmallestCostFirst,
    /// Coordinate a uniformly random subset (ablation baseline); the seed
    /// makes runs reproducible.
    Random(u64),
}

/// Configuration of [`lcf`].
#[derive(Debug, Clone)]
pub struct LcfConfig {
    /// Fraction `ξ ∈ [0, 1]` of providers the leader coordinates.
    pub xi: f64,
    /// Coordination selection rule.
    pub selection: SelectionRule,
    /// Move order of the selfish best-response dynamics.
    pub order: MoveOrder,
    /// `Appro` configuration used for the restricted strategy.
    pub appro: ApproConfig,
}

impl LcfConfig {
    /// Default configuration with the given coordination fraction `ξ`.
    ///
    /// # Panics
    ///
    /// Panics if `xi` is outside `[0, 1]`.
    pub fn new(xi: f64) -> Self {
        assert!((0.0..=1.0).contains(&xi), "xi must be in [0, 1], got {xi}");
        LcfConfig {
            xi,
            selection: SelectionRule::LargestCostFirst,
            order: MoveOrder::RoundRobin,
            appro: ApproConfig::new(),
        }
    }
}

/// Outcome of the LCF mechanism.
#[derive(Debug, Clone)]
pub struct LcfOutcome {
    /// Final strategy profile (coordinated pinned, selfish at equilibrium).
    pub profile: Profile,
    /// The `Appro` solution the leader restricted itself to.
    pub appro: ApproSolution,
    /// Providers coordinated by the leader (`N_s`).
    pub coordinated: Vec<ProviderId>,
    /// Convergence statistics of the selfish dynamics.
    pub convergence: Convergence,
    /// Social cost of the final profile — Eq. (6).
    pub social_cost: f64,
    /// Total cost paid by coordinated providers.
    pub coordinated_cost: f64,
    /// Total cost paid by selfish providers.
    pub selfish_cost: f64,
}

/// Runs the LCF Stackelberg mechanism on `market`.
///
/// # Errors
///
/// Propagates [`CoreError`] from the `Appro` phase.
///
/// # Examples
///
/// ```
/// use mec_core::lcf::{lcf, LcfConfig};
/// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
///
/// let mut b = Market::builder()
///     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
///     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.2, 0.2));
/// for _ in 0..6 {
///     b = b.provider(ProviderSpec::new(2.0, 10.0, 1.0, 30.0));
/// }
/// let market = b.uniform_update_cost(0.2).build();
/// let out = lcf(&market, &LcfConfig::new(0.7))?;
/// assert_eq!(out.coordinated.len(), 4); // ⌊0.7 · 6⌋
/// assert!(out.convergence.converged);
/// # Ok::<(), mec_core::CoreError>(())
/// ```
pub fn lcf(market: &Market, config: &LcfConfig) -> Result<LcfOutcome, CoreError> {
    let n = market.provider_count();
    let appro_sol = appro(market, &config.appro)?;

    // One incremental state carries the whole mechanism: ζ-cost extraction,
    // the pin/reset phase, the selfish dynamics, and the final cost split
    // all read its O(1) aggregates instead of rescanning the profile.
    let mut state = GameState::new(market, appro_sol.profile.clone());

    // Cost of each provider in the approximate solution (with congestion —
    // "the cost of caching their services" under ζ).
    let zeta_costs: Vec<f64> = market.providers().map(|l| state.provider_cost(l)).collect();

    let k = (config.xi * n as f64).floor() as usize;
    let coordinated = select(market, &zeta_costs, k, config.selection);
    let mut movable = vec![true; n];
    for &l in &coordinated {
        movable[l.index()] = false;
    }

    // Coordinated providers are pinned to ζ. Selfish providers never agreed
    // to ζ in the first place — they enter the market fresh (from their
    // remote instance when they have one) and "selfishly select cloudlets
    // that incur the lowest cost" until a Nash equilibrium is reached.
    for l in market.providers() {
        if movable[l.index()] && market.provider(l).can_stay_remote() {
            state.apply_move(l, Placement::Remote);
        }
    }
    let convergence = BestResponseDynamics::new(config.order).run_state(&mut state, &movable);

    let social_cost = state.social_cost();
    let coordinated_cost = state.subset_cost(coordinated.iter().copied());
    let selfish = market.providers().filter(|l| movable[l.index()]);
    let selfish_cost = state.subset_cost(selfish);

    let profile = state.into_profile();
    #[cfg(feature = "verify")]
    {
        let mut cert = crate::verify::Certificate::new("lcf outcome");
        cert.extend(crate::verify::check_capacity(market, &profile))
            .extend(crate::verify::check_cost_reconstruction(
                market,
                &profile,
                social_cost,
                1e-9,
            ));
        if convergence.converged {
            // The selfish subgame reached equilibrium: certify it from
            // first principles, independent of the GameState machinery.
            cert.extend(crate::verify::check_nash(
                market,
                &profile,
                &movable,
                crate::game::IMPROVEMENT_TOL,
            ));
        }
        cert.assert_valid();
    }

    Ok(LcfOutcome {
        profile,
        appro: appro_sol,
        coordinated,
        convergence,
        social_cost,
        coordinated_cost,
        selfish_cost,
    })
}

fn select(market: &Market, zeta_costs: &[f64], k: usize, rule: SelectionRule) -> Vec<ProviderId> {
    let mut ids: Vec<ProviderId> = market.providers().collect();
    match rule {
        SelectionRule::LargestCostFirst => {
            ids.sort_by(|a, b| {
                zeta_costs[b.index()]
                    .partial_cmp(&zeta_costs[a.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index().cmp(&b.index()))
            });
        }
        SelectionRule::SmallestCostFirst => {
            ids.sort_by(|a, b| {
                zeta_costs[a.index()]
                    .partial_cmp(&zeta_costs[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index().cmp(&b.index()))
            });
        }
        SelectionRule::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            ids.shuffle(&mut rng);
        }
    }
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::is_nash;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_num::assert_approx_eq;

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.6, 0.6))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.3, 0.3))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.1, 0.1));
        for k in 0..n {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 3) as f64,
                5.0 + (k % 5) as f64,
                0.5 + 0.25 * (k % 4) as f64,
                25.0,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn coordinated_count_is_floor_xi_n() {
        let m = market(10);
        for (xi, want) in [(0.0, 0), (0.3, 3), (0.75, 7), (1.0, 10)] {
            let out = lcf(&m, &LcfConfig::new(xi)).unwrap();
            assert_eq!(out.coordinated.len(), want, "xi={xi}");
        }
    }

    #[test]
    fn coordinated_pinned_to_appro() {
        let m = market(8);
        let out = lcf(&m, &LcfConfig::new(0.5)).unwrap();
        for &l in &out.coordinated {
            assert_eq!(
                out.profile.placement(l),
                out.appro.profile.placement(l),
                "coordinated provider {l} moved"
            );
        }
    }

    #[test]
    fn selfish_players_reach_nash() {
        let m = market(12);
        let out = lcf(&m, &LcfConfig::new(0.4)).unwrap();
        assert!(out.convergence.converged);
        let mut movable = vec![true; 12];
        for &l in &out.coordinated {
            movable[l.index()] = false;
        }
        assert!(is_nash(&m, &out.profile, &movable));
    }

    #[test]
    fn lcf_selects_largest_cost_providers() {
        let m = market(6);
        let out = lcf(&m, &LcfConfig::new(0.5)).unwrap();
        let costs: Vec<f64> = m
            .providers()
            .map(|l| out.appro.profile.provider_cost(&m, l))
            .collect();
        let min_coord = out
            .coordinated
            .iter()
            .map(|l| costs[l.index()])
            .fold(f64::INFINITY, f64::min);
        let max_free = m
            .providers()
            .filter(|l| !out.coordinated.contains(l))
            .map(|l| costs[l.index()])
            .fold(0.0, f64::max);
        assert!(min_coord + 1e-9 >= max_free);
    }

    #[test]
    fn cost_split_sums_to_social_cost() {
        let m = market(9);
        let out = lcf(&m, &LcfConfig::new(0.33)).unwrap();
        assert!((out.coordinated_cost + out.selfish_cost - out.social_cost).abs() < 1e-9);
    }

    #[test]
    fn full_coordination_equals_appro() {
        let m = market(7);
        let out = lcf(&m, &LcfConfig::new(1.0)).unwrap();
        assert!((out.social_cost - out.appro.social_cost).abs() < 1e-9);
        assert_approx_eq!(out.selfish_cost, 0.0, 1e-12);
    }

    #[test]
    fn zero_coordination_is_pure_game() {
        let m = market(7);
        let out = lcf(&m, &LcfConfig::new(0.0)).unwrap();
        assert!(out.coordinated.is_empty());
        let movable = vec![true; 7];
        assert!(is_nash(&m, &out.profile, &movable));
    }

    #[test]
    fn selection_rules_differ() {
        let m = market(10);
        let a = lcf(
            &m,
            &LcfConfig {
                selection: SelectionRule::LargestCostFirst,
                ..LcfConfig::new(0.5)
            },
        )
        .unwrap();
        let b = lcf(
            &m,
            &LcfConfig {
                selection: SelectionRule::SmallestCostFirst,
                ..LcfConfig::new(0.5)
            },
        )
        .unwrap();
        assert_ne!(a.coordinated, b.coordinated);
    }

    #[test]
    fn profile_stays_feasible() {
        let m = market(15);
        let out = lcf(&m, &LcfConfig::new(0.3)).unwrap();
        assert!(out.profile.is_feasible(&m));
    }

    #[test]
    #[should_panic(expected = "xi must be in [0, 1]")]
    fn rejects_bad_xi() {
        let _ = LcfConfig::new(1.5);
    }
}
