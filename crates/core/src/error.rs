//! Error type of the core mechanism crate.

use mec_gap::GapError;

use crate::model::ProviderId;

/// Errors produced by the `Appro` / `LCF` mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A provider fits in no cloudlet and may not stay remote.
    NoFeasiblePlacement {
        /// The stranded provider.
        provider: ProviderId,
    },
    /// The market as a whole cannot host every provider.
    Infeasible,
    /// The GAP substrate failed.
    Gap(GapError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoFeasiblePlacement { provider } => {
                write!(f, "provider {provider} has no feasible placement")
            }
            CoreError::Infeasible => write!(f, "market cannot host every provider"),
            CoreError::Gap(e) => write!(f, "GAP substrate failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Gap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GapError> for CoreError {
    fn from(e: GapError) -> Self {
        match e {
            GapError::ItemDoesNotFit { item } => CoreError::NoFeasiblePlacement {
                provider: ProviderId(item),
            },
            GapError::Infeasible => CoreError::Infeasible,
            other => CoreError::Gap(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NoFeasiblePlacement {
            provider: ProviderId(3),
        };
        assert!(e.to_string().contains("sp3"));
        assert!(CoreError::Infeasible.to_string().contains("market"));
    }

    #[test]
    fn from_gap_error() {
        let e: CoreError = GapError::ItemDoesNotFit { item: 2 }.into();
        assert_eq!(
            e,
            CoreError::NoFeasiblePlacement {
                provider: ProviderId(2)
            }
        );
        let e: CoreError = GapError::Infeasible.into();
        assert_eq!(e, CoreError::Infeasible);
    }
}
