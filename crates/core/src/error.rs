//! Error type of the core mechanism crate.

use mec_gap::GapError;

use crate::model::ProviderId;

/// Errors produced by the caching mechanisms (`Appro` / `LCF`) and the
/// churn simulation.
///
/// Hot paths report failures through this type instead of panicking, so a
/// caller embedding the mechanisms in a long-running service can degrade
/// gracefully (e.g. keep the previous configuration when a replan fails).
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// A provider fits in no cloudlet and may not stay remote.
    NoFeasiblePlacement {
        /// The stranded provider.
        provider: ProviderId,
    },
    /// The market as a whole cannot host every provider.
    Infeasible,
    /// The GAP substrate failed.
    Gap(GapError),
    /// A churn arrival named a provider that is already active.
    AlreadyActive {
        /// The doubly-arriving provider.
        provider: ProviderId,
    },
    /// A churn departure named a provider that is not active.
    NotActive {
        /// The absent provider.
        provider: ProviderId,
    },
}

/// Former name of [`CacheError`], kept so existing call sites and examples
/// continue to compile.
pub type CoreError = CacheError;

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::NoFeasiblePlacement { provider } => {
                write!(f, "provider {provider} has no feasible placement")
            }
            CacheError::Infeasible => write!(f, "market cannot host every provider"),
            CacheError::Gap(e) => write!(f, "GAP substrate failed: {e}"),
            CacheError::AlreadyActive { provider } => {
                write!(f, "churn arrival: {provider} is already active")
            }
            CacheError::NotActive { provider } => {
                write!(f, "churn departure: {provider} is not active")
            }
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Gap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GapError> for CacheError {
    fn from(e: GapError) -> Self {
        match e {
            GapError::ItemDoesNotFit { item } => CacheError::NoFeasiblePlacement {
                provider: ProviderId(item),
            },
            GapError::Infeasible => CacheError::Infeasible,
            other => CacheError::Gap(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CacheError::NoFeasiblePlacement {
            provider: ProviderId(3),
        };
        assert!(e.to_string().contains("sp3"));
        assert!(CacheError::Infeasible.to_string().contains("market"));
        let e = CacheError::AlreadyActive {
            provider: ProviderId(1),
        };
        assert!(e.to_string().contains("already active"));
        let e = CacheError::NotActive {
            provider: ProviderId(2),
        };
        assert!(e.to_string().contains("not active"));
    }

    #[test]
    fn from_gap_error() {
        let e: CacheError = GapError::ItemDoesNotFit { item: 2 }.into();
        assert_eq!(
            e,
            CacheError::NoFeasiblePlacement {
                provider: ProviderId(2)
            }
        );
        let e: CacheError = GapError::Infeasible.into();
        assert_eq!(e, CacheError::Infeasible);
    }

    #[test]
    fn core_error_alias_still_names_the_type() {
        let e: CoreError = CacheError::Infeasible;
        assert_eq!(e, CacheError::Infeasible);
    }
}
