//! Versioned market snapshots: serialize a market + profile + active set
//! to a JSONL file and restore it with recounted aggregates.
//!
//! The serving layer (`mec-serve`) persists its live [`GameState`](crate::state::GameState)
//! through this module: a snapshot captures everything needed to rebuild
//! the state from scratch — cloudlet and provider specs, the
//! provider×cloudlet update-cost matrix, every placement, and the
//! active-provider mask — so congestion counts, loads, and residuals are
//! *recounted* on restore ([`GameState::new`](crate::state::GameState::new)) rather than trusted from
//! the file. A snapshot of a state that drifted (impossible while the
//! `debug_assert` invariant holds, but snapshots outlive processes)
//! therefore heals itself on load.
//!
//! Format: one flat JSON object per line, using the shared escaping and
//! number rules of [`mec_obs::json`] (lossless `u64`, shortest
//! round-trip `f64`, `"inf"` for the remote-forbidden sentinel):
//!
//! ```text
//! {"type":"mec-snapshot","version":1,"seq":42,"cloudlets":2,"providers":3}
//! {"type":"cloudlet","id":0,"compute":10,"bandwidth":50,"alpha":0.5,"beta":0.5}
//! {"type":"provider","id":0,"compute":2,"bandwidth":10,"ins":1,"remote":10}
//! {"type":"updates","provider":0,"row":"0.4,0.4"}
//! {"type":"placement","provider":0,"at":0,"active":1}        // cached at cl0
//! {"type":"placement","provider":1,"at":"remote","active":0} // inactive
//! {"type":"end","records":7}
//! ```
//!
//! The `end` record counts every line including itself, so a torn write
//! (power loss between lines) is detected as corruption. Durable writes
//! go through [`save_snapshot`]: write to `<path>.tmp`, fsync, rename —
//! a crash leaves either the old snapshot or the new one, never a mix.

use std::path::Path;

use mec_obs::json::{self, Token};
use mec_topology::CloudletId;

use crate::model::{CloudletSpec, Market, ProviderId, ProviderSpec};
use crate::strategy::{Placement, Profile};

/// Snapshot format version written by [`encode_snapshot`]; [`parse_snapshot`]
/// rejects anything else.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A parsed snapshot: the full market, the profile, and the active mask.
#[derive(Debug, Clone)]
pub struct MarketSnapshot {
    /// Monotonic sequence number of the snapshot (the serving layer bumps
    /// it per write, so "which file is newer" never depends on mtimes).
    pub seq: u64,
    /// The reconstructed market (specs + update-cost matrix).
    pub market: Market,
    /// Placement of every provider at snapshot time.
    pub profile: Profile,
    /// Which providers were active (admitted) at snapshot time.
    pub active: Vec<bool>,
    /// Shard metadata when this file is one slice of a coordinated
    /// multi-shard snapshot; `None` for a whole-market snapshot.
    pub shard: Option<ShardMeta>,
}

/// Identifies one shard's slice inside a coordinated snapshot set.
///
/// Every shard of a set writes the *full* market (specs are shared) but
/// owns only a subset of providers; `owned` records that subset so a
/// restore can rebuild the provider→shard routing table. `epoch` is the
/// coordinator-assigned stamp shared by every file of one consistent
/// set — files from different epochs must never be mixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Coordinator epoch shared by all files of one snapshot set.
    pub epoch: u64,
    /// This shard's index in `0..count`.
    pub index: usize,
    /// Number of shards in the set.
    pub count: usize,
    /// Provider-ownership mask (indexed by provider id).
    pub owned: Vec<bool>,
}

/// Why a snapshot failed to load or save.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file's contents are not a valid snapshot.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

impl From<json::ParseError> for SnapshotError {
    fn from(e: json::ParseError) -> Self {
        corrupt(e.to_string())
    }
}

/// Encodes a snapshot as JSONL text (ends with a newline).
pub fn encode_snapshot(seq: u64, market: &Market, profile: &Profile, active: &[bool]) -> String {
    encode_with(seq, market, profile, active, None)
}

/// Encodes one shard's slice of a coordinated snapshot set.
///
/// Identical to [`encode_snapshot`] plus a `shard` record carrying the
/// coordinator epoch and the provider-ownership mask. The format version
/// is unchanged: the record is optional, so old readers of whole-market
/// snapshots are unaffected and [`parse_snapshot`] accepts both shapes.
pub fn encode_snapshot_sharded(
    seq: u64,
    market: &Market,
    profile: &Profile,
    active: &[bool],
    shard: &ShardMeta,
) -> String {
    encode_with(seq, market, profile, active, Some(shard))
}

fn encode_with(
    seq: u64,
    market: &Market,
    profile: &Profile,
    active: &[bool],
    shard: Option<&ShardMeta>,
) -> String {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let mut out = String::with_capacity(64 * (2 * n + m + 2));
    let mut records = 1u64; // the header itself
    out.push_str(&format!(
        "{{\"type\":\"mec-snapshot\",\"version\":{SNAPSHOT_VERSION},\"seq\":{seq},\
         \"cloudlets\":{m},\"providers\":{n}}}\n"
    ));
    if let Some(s) = shard {
        let mask: String = (0..n)
            .map(|l| {
                if s.owned.get(l).copied().unwrap_or(false) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"shard\",\"epoch\":{},\"index\":{},\"count\":{},\"owned\":\"{mask}\"}}\n",
            s.epoch, s.index, s.count
        ));
        records += 1;
    }
    for i in market.cloudlets() {
        let c = market.cloudlet(i);
        out.push_str(&format!(
            "{{\"type\":\"cloudlet\",\"id\":{},\"compute\":",
            i.index()
        ));
        json::push_f64(&mut out, c.compute_capacity);
        out.push_str(",\"bandwidth\":");
        json::push_f64(&mut out, c.bandwidth_capacity);
        out.push_str(",\"alpha\":");
        json::push_f64(&mut out, c.alpha);
        out.push_str(",\"beta\":");
        json::push_f64(&mut out, c.beta);
        out.push_str("}\n");
        records += 1;
    }
    for l in market.providers() {
        let p = market.provider(l);
        out.push_str(&format!(
            "{{\"type\":\"provider\",\"id\":{},\"compute\":",
            l.index()
        ));
        json::push_f64(&mut out, p.compute_demand);
        out.push_str(",\"bandwidth\":");
        json::push_f64(&mut out, p.bandwidth_demand);
        out.push_str(",\"ins\":");
        json::push_f64(&mut out, p.instantiation_cost);
        out.push_str(",\"remote\":");
        json::push_f64(&mut out, p.remote_cost);
        out.push_str("}\n");
        records += 1;
        // Update costs are builder-validated finite, so the comma-joined
        // row never needs the quoted non-finite spellings.
        let row: Vec<String> = market
            .cloudlets()
            .map(|i| format!("{}", market.update_cost(l, i)))
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"updates\",\"provider\":{},\"row\":\"{}\"}}\n",
            l.index(),
            row.join(",")
        ));
        records += 1;
    }
    for (l, p) in profile.iter() {
        let at = match p {
            Placement::Cloudlet(c) => format!("{}", c.index()),
            Placement::Remote => "\"remote\"".to_string(),
        };
        let is_active = active.get(l.index()).copied().unwrap_or(false);
        out.push_str(&format!(
            "{{\"type\":\"placement\",\"provider\":{},\"at\":{at},\"active\":{}}}\n",
            l.index(),
            u64::from(is_active)
        ));
        records += 1;
    }
    out.push_str(&format!(
        "{{\"type\":\"end\",\"records\":{}}}\n",
        records + 1
    ));
    out
}

/// Parses JSONL snapshot text back into a [`MarketSnapshot`].
///
/// Congestion counts, loads, and residuals are **not** stored in the
/// file; rebuild them with [`GameState::new`](crate::state::GameState::new) on the returned market and
/// profile (they are recounted from the placements).
///
/// # Errors
///
/// Returns [`SnapshotError::Corrupt`] on a bad version, missing or
/// duplicate records, a truncated file (no/bad `end` record), or any
/// malformed line.
pub fn parse_snapshot(text: &str) -> Result<MarketSnapshot, SnapshotError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = json::parse_object(lines.next().ok_or_else(|| corrupt("empty file"))?)?;
    if json::get_str(&header, "type")? != "mec-snapshot" {
        return Err(corrupt("first record is not a mec-snapshot header"));
    }
    let version = json::get_u64(&header, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (supported: {SNAPSHOT_VERSION})"
        )));
    }
    let seq = json::get_u64(&header, "seq")?;
    let m = json::get_usize(&header, "cloudlets")?;
    let n = json::get_usize(&header, "providers")?;
    if m == 0 || n == 0 {
        return Err(corrupt(
            "snapshot must cover at least one cloudlet and provider",
        ));
    }

    let mut cloudlets: Vec<Option<CloudletSpec>> = vec![None; m];
    let mut providers: Vec<Option<ProviderSpec>> = vec![None; n];
    let mut updates: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut placements: Vec<Option<(Placement, bool)>> = vec![None; n];
    let mut shard: Option<ShardMeta> = None;
    let mut records = 1u64;
    let mut saw_end = false;

    for line in lines {
        if saw_end {
            return Err(corrupt("records after the end marker"));
        }
        records += 1;
        let fields = json::parse_object(line)?;
        match json::get_str(&fields, "type")? {
            "cloudlet" => {
                let id = json::get_usize(&fields, "id")?;
                let slot = cloudlets
                    .get_mut(id)
                    .ok_or_else(|| corrupt(format!("cloudlet id {id} out of range")))?;
                if slot.is_some() {
                    return Err(corrupt(format!("duplicate cloudlet {id}")));
                }
                *slot = Some(checked_cloudlet(&fields)?);
            }
            "provider" => {
                let id = json::get_usize(&fields, "id")?;
                let slot = providers
                    .get_mut(id)
                    .ok_or_else(|| corrupt(format!("provider id {id} out of range")))?;
                if slot.is_some() {
                    return Err(corrupt(format!("duplicate provider {id}")));
                }
                *slot = Some(checked_provider(&fields)?);
            }
            "updates" => {
                let id = json::get_usize(&fields, "provider")?;
                let slot = updates
                    .get_mut(id)
                    .ok_or_else(|| corrupt(format!("updates row {id} out of range")))?;
                if slot.is_some() {
                    return Err(corrupt(format!("duplicate updates row {id}")));
                }
                let row = parse_update_row(json::get_str(&fields, "row")?, m)?;
                *slot = Some(row);
            }
            "placement" => {
                let id = json::get_usize(&fields, "provider")?;
                let slot = placements
                    .get_mut(id)
                    .ok_or_else(|| corrupt(format!("placement of provider {id} out of range")))?;
                if slot.is_some() {
                    return Err(corrupt(format!("duplicate placement of provider {id}")));
                }
                let at = match json::get(&fields, "at")? {
                    Token::Str(s) if s == "remote" => Placement::Remote,
                    Token::Str(s) => return Err(corrupt(format!("bad placement `{s}`"))),
                    Token::Num(_) => {
                        let k = json::get_usize(&fields, "at")?;
                        if k >= m {
                            return Err(corrupt(format!("placement cloudlet {k} out of range")));
                        }
                        Placement::Cloudlet(CloudletId(k))
                    }
                };
                let active = json::get_u64(&fields, "active")? != 0;
                *slot = Some((at, active));
            }
            "shard" => {
                if shard.is_some() {
                    return Err(corrupt("duplicate shard record"));
                }
                let epoch = json::get_u64(&fields, "epoch")?;
                let index = json::get_usize(&fields, "index")?;
                let count = json::get_usize(&fields, "count")?;
                if count == 0 || index >= count {
                    return Err(corrupt(format!("shard index {index} of {count}")));
                }
                let mask = json::get_str(&fields, "owned")?;
                if mask.len() != n || mask.bytes().any(|b| b != b'0' && b != b'1') {
                    return Err(corrupt("shard ownership mask malformed"));
                }
                shard = Some(ShardMeta {
                    epoch,
                    index,
                    count,
                    owned: mask.bytes().map(|b| b == b'1').collect(),
                });
            }
            "end" => {
                let claimed = json::get_u64(&fields, "records")?;
                if claimed != records {
                    return Err(corrupt(format!(
                        "end marker claims {claimed} records, counted {records}"
                    )));
                }
                saw_end = true;
            }
            other => return Err(corrupt(format!("unknown record type `{other}`"))),
        }
    }
    if !saw_end {
        return Err(corrupt("truncated: no end marker"));
    }

    let mut builder = Market::builder();
    for (id, c) in cloudlets.into_iter().enumerate() {
        builder = builder.cloudlet(c.ok_or_else(|| corrupt(format!("missing cloudlet {id}")))?);
    }
    let mut matrix = Vec::with_capacity(n * m);
    for (id, (p, row)) in providers.into_iter().zip(updates).enumerate() {
        builder = builder.provider(p.ok_or_else(|| corrupt(format!("missing provider {id}")))?);
        matrix.extend(row.ok_or_else(|| corrupt(format!("missing updates row {id}")))?);
    }
    let market = builder.update_cost_matrix(matrix).build();

    let mut profile = Profile::all_remote(n);
    let mut active = vec![false; n];
    for (id, slot) in placements.into_iter().enumerate() {
        let (at, is_active) =
            slot.ok_or_else(|| corrupt(format!("missing placement of provider {id}")))?;
        profile.set(ProviderId(id), at);
        active[id] = is_active;
    }

    Ok(MarketSnapshot {
        seq,
        market,
        profile,
        active,
        shard,
    })
}

/// Validates spec fields before handing them to the panicking
/// constructors — corrupt files must surface [`SnapshotError`], not abort.
fn checked_cloudlet(fields: &[(String, Token)]) -> Result<CloudletSpec, SnapshotError> {
    let compute = json::get_f64(fields, "compute")?;
    let bandwidth = json::get_f64(fields, "bandwidth")?;
    let alpha = json::get_f64(fields, "alpha")?;
    let beta = json::get_f64(fields, "beta")?;
    for v in [compute, bandwidth, alpha, beta] {
        if !v.is_finite() || v < 0.0 {
            return Err(corrupt(format!("cloudlet field out of domain: {v}")));
        }
    }
    Ok(CloudletSpec::new(compute, bandwidth, alpha, beta))
}

fn checked_provider(fields: &[(String, Token)]) -> Result<ProviderSpec, SnapshotError> {
    let compute = json::get_f64(fields, "compute")?;
    let bandwidth = json::get_f64(fields, "bandwidth")?;
    let ins = json::get_f64(fields, "ins")?;
    let remote = json::get_f64(fields, "remote")?;
    for v in [compute, bandwidth, ins] {
        if !v.is_finite() || v < 0.0 {
            return Err(corrupt(format!("provider field out of domain: {v}")));
        }
    }
    if remote.is_nan() || remote < 0.0 {
        return Err(corrupt("provider remote cost out of domain"));
    }
    Ok(ProviderSpec::new(compute, bandwidth, ins, remote))
}

fn parse_update_row(row: &str, m: usize) -> Result<Vec<f64>, SnapshotError> {
    let vals: Result<Vec<f64>, _> = row.split(',').map(str::parse::<f64>).collect();
    let vals = vals.map_err(|_| corrupt(format!("bad updates row `{row}`")))?;
    if vals.len() != m {
        return Err(corrupt(format!(
            "updates row has {} entries, expected {m}",
            vals.len()
        )));
    }
    if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
        return Err(corrupt("update cost out of domain"));
    }
    Ok(vals)
}

/// Atomically writes a snapshot to `path`: encode, write `<path>.tmp`,
/// fsync, rename over `path`. A crash at any point leaves either the old
/// file or the complete new one.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if any filesystem step fails.
pub fn save_snapshot(
    path: &Path,
    seq: u64,
    market: &Market,
    profile: &Profile,
    active: &[bool],
) -> Result<(), SnapshotError> {
    use std::io::Write;
    let text = encode_snapshot(seq, market, profile, active);
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Atomically writes one shard's slice of a coordinated snapshot set
/// (same tmp + fsync + rename discipline as [`save_snapshot`]).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if any filesystem step fails.
pub fn save_snapshot_sharded(
    path: &Path,
    seq: u64,
    market: &Market,
    profile: &Profile,
    active: &[bool],
    shard: &ShardMeta,
) -> Result<(), SnapshotError> {
    use std::io::Write;
    let text = encode_snapshot_sharded(seq, market, profile, active, shard);
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Reads and parses a snapshot file.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if the file cannot be read, or
/// [`SnapshotError::Corrupt`] if its contents do not parse.
pub fn load_snapshot(path: &Path) -> Result<MarketSnapshot, SnapshotError> {
    parse_snapshot(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use crate::state::GameState;

    fn market() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(8.0, 40.0, 0.2, 0.3))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(3.0, 12.0, 1.5, f64::INFINITY))
            .provider(ProviderSpec::new(1.0, 8.0, 0.5, 6.0))
            .uniform_update_cost(0.4)
            .build()
    }

    fn profile() -> Profile {
        let mut p = Profile::all_remote(3);
        p.set(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
        p.set(ProviderId(1), Placement::Cloudlet(CloudletId(1)));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = market();
        let p = profile();
        let active = vec![true, true, false];
        let snap = parse_snapshot(&encode_snapshot(7, &m, &p, &active)).unwrap();
        assert_eq!(snap.seq, 7);
        assert_eq!(snap.active, active);
        assert_eq!(snap.profile, p);
        assert_eq!(snap.market.cloudlet_count(), 2);
        assert_eq!(snap.market.provider_count(), 3);
        for i in m.cloudlets() {
            assert_eq!(snap.market.cloudlet(i), m.cloudlet(i));
        }
        for l in m.providers() {
            assert_eq!(snap.market.provider(l), m.provider(l));
            for i in m.cloudlets() {
                assert_eq!(snap.market.update_cost(l, i).to_bits(), 0.4f64.to_bits());
            }
        }
    }

    #[test]
    fn restore_recounts_aggregates() {
        let m = market();
        let p = profile();
        let snap = parse_snapshot(&encode_snapshot(0, &m, &p, &[true; 3])).unwrap();
        let state = GameState::new(&snap.market, snap.profile.clone());
        assert!(state.agrees_with_recompute(1e-12));
        assert_eq!(state.congestion(CloudletId(0)), 1);
        assert_eq!(state.congestion(CloudletId(1)), 1);
    }

    #[test]
    fn save_and_load_via_temp_rename() {
        let dir = std::env::temp_dir().join(format!("mec-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let m = market();
        save_snapshot(&path, 3, &m, &profile(), &[true, false, true]).unwrap();
        // The temp staging file must be gone after the rename.
        assert!(!tmp_path(&path).exists());
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.active, vec![true, false, true]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let text = encode_snapshot(1, &market(), &profile(), &[true; 3]);
        // Drop the end marker line.
        let cut = text.lines().count() - 1;
        let truncated: String = text.lines().take(cut).map(|l| format!("{l}\n")).collect();
        match parse_snapshot(&truncated) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("end marker"), "{msg}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        // Drop a mid-file record: the end marker's count no longer matches.
        let holed: String = text
            .lines()
            .enumerate()
            .filter(|(k, _)| *k != 3)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(parse_snapshot(&holed).is_err());
    }

    #[test]
    fn corrupt_fields_error_instead_of_panicking() {
        for bad in [
            "{\"type\":\"mec-snapshot\",\"version\":99,\"seq\":0,\"cloudlets\":1,\"providers\":1}\n",
            "{\"type\":\"mec-snapshot\",\"version\":1,\"seq\":0,\"cloudlets\":0,\"providers\":1}\n",
            "not json\n",
            "",
        ] {
            assert!(parse_snapshot(bad).is_err(), "`{bad}` should not parse");
        }
        // Negative capacity must surface as Corrupt, not a panicking
        // CloudletSpec::new.
        let text = encode_snapshot(0, &market(), &profile(), &[true; 3])
            .replace("\"compute\":10,", "\"compute\":-10,");
        assert!(matches!(
            parse_snapshot(&text),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn shard_record_round_trips_and_stays_optional() {
        let m = market();
        let p = profile();
        let meta = ShardMeta {
            epoch: 9,
            index: 1,
            count: 3,
            owned: vec![false, true, true],
        };
        let text = encode_snapshot_sharded(5, &m, &p, &[true, true, false], &meta);
        let snap = parse_snapshot(&text).unwrap();
        assert_eq!(snap.shard, Some(meta));
        assert_eq!(snap.seq, 5);

        // Whole-market snapshots carry no shard record.
        let plain = parse_snapshot(&encode_snapshot(5, &m, &p, &[true; 3])).unwrap();
        assert_eq!(plain.shard, None);

        // A malformed mask is corruption, not a panic.
        let bad = text.replace("\"owned\":\"011\"", "\"owned\":\"01x\"");
        assert!(matches!(
            parse_snapshot(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        let short = text.replace("\"owned\":\"011\"", "\"owned\":\"01\"");
        assert!(parse_snapshot(&short).is_err());
    }

    #[test]
    fn infinity_remote_cost_survives() {
        let snap = parse_snapshot(&encode_snapshot(0, &market(), &profile(), &[true; 3])).unwrap();
        assert!(snap
            .market
            .provider(ProviderId(1))
            .remote_cost
            .is_infinite());
        assert!(!snap.market.provider(ProviderId(1)).can_stay_remote());
    }
}
