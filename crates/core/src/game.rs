//! The congestion game played by selfish providers (paper Section II-E).
//!
//! Costs are affine in the congestion level, so the game is an exact
//! potential game (Rosenthal): every unilateral improvement strictly
//! decreases the potential
//!
//! ```text
//! Φ(σ) = Σ_i [ (α_i+β_i) · |σ_i|(|σ_i|+1)/2  +  Σ_{l ∈ σ_i} (c_l_ins + c_{l,i}_bdw) ]
//!        + Σ_{l remote} remote_l
//! ```
//!
//! and best-response dynamics therefore converge to a pure Nash equilibrium
//! (Lemma 3). Capacity constraints restrict the strategy sets (a player may
//! only move into a cloudlet with room) — improvements still strictly
//! decrease `Φ`, so convergence is unaffected.
//!
//! The dynamics run on an incremental [`GameState`] (see [`crate::state`]):
//! moves update congestion and loads in `O(1)`, a full sweep costs `O(N·M)`
//! with zero allocations instead of the `O(N·(N+M))` + `~3N` allocations of
//! recomputing per candidate. The recompute path is retained as
//! [`best_response`] / [`BestResponseDynamics::run_reference`] for
//! differential tests and benchmarks. `MaxGain` candidate scans and Nash
//! verification fan out across threads when the market is large enough to
//! amortize thread startup; the chunked merge reproduces the sequential
//! tie-breaking exactly, so results are identical at any worker count.

use crate::model::{Market, ProviderId};
use crate::state::GameState;
use crate::strategy::{Placement, Profile};

/// Order in which players are offered deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoveOrder {
    /// Sweep providers in id order repeatedly (fast, the default).
    #[default]
    RoundRobin,
    /// Always move the player with the largest cost improvement
    /// (slower; ablation `ablation_br`).
    MaxGain,
}

/// Result of running best-response dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Full sweeps over the player set that were executed.
    pub rounds: usize,
    /// Number of improving moves applied.
    pub moves: usize,
    /// `true` if a Nash equilibrium was reached within the round budget.
    pub converged: bool,
}

/// Minimum cost improvement that counts as a profitable deviation.
pub const IMPROVEMENT_TOL: f64 = 1e-9;

/// Provider×cloudlet cells below which scans stay sequential: thread
/// startup (~tens of µs) dwarfs the scan itself on small markets.
const PAR_MIN_CELLS: usize = 1 << 15;

/// Worker count for a scan over `cells` provider×cloudlet cells split
/// into at most `items` chunks; `1` means "stay sequential".
pub(crate) fn par_workers(cells: usize, items: usize) -> usize {
    if cells < PAR_MIN_CELLS || items < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(16)
        .min(items)
}

/// Samples the Rosenthal potential into the `core.dynamics.potential`
/// gauge series, one point per round. The potential recount is `O(N+M)`,
/// so it only runs when a trace sink is actually listening.
fn emit_potential_gauge(state: &GameState<'_>, round: usize) {
    if mec_obs::sink_installed() {
        mec_obs::gauge(
            "core.dynamics.potential",
            round as u64,
            rosenthal_potential(state.market(), state.profile()),
        );
    }
}

/// Computes the Rosenthal potential of `profile`.
pub fn rosenthal_potential(market: &Market, profile: &Profile) -> f64 {
    let sigma = profile.congestion(market);
    let mut phi = 0.0;
    for i in market.cloudlets() {
        let s = sigma[i.index()] as f64;
        phi += market.cloudlet(i).congestion_price() * s * (s + 1.0) / 2.0;
    }
    for (l, p) in profile.iter() {
        match p {
            Placement::Remote => phi += market.provider(l).remote_cost,
            Placement::Cloudlet(i) => {
                phi += market.provider(l).instantiation_cost + market.update_cost(l, i);
            }
        }
    }
    phi
}

/// The best response of provider `l` against the rest of `profile`,
/// recomputing congestion and residuals from scratch.
///
/// This is the *reference* path — `O(N+M)` and two allocations per call.
/// Hot loops use the allocation-free [`GameState::best_response`] instead,
/// which is differentially tested to return identical results.
///
/// Only capacity-feasible cloudlets (after removing `l` from its current
/// placement) and — if the provider allows it — the remote option are
/// candidates. Returns the placement and the cost `l` would pay there.
/// Ties are broken toward the current placement, then the smallest cloudlet
/// id, so dynamics are deterministic.
///
/// Returns `None` when no candidate at all is available (every cloudlet is
/// full and the remote option is forbidden); the caller should keep the
/// current placement.
pub fn best_response(
    market: &Market,
    profile: &Profile,
    l: ProviderId,
) -> Option<(Placement, f64)> {
    let current = profile.placement(l);
    let mut residual = profile.residual(market);
    let mut sigma = profile.congestion(market);
    // Remove l from its current cloudlet so candidates see the "others only"
    // state.
    if let Placement::Cloudlet(c) = current {
        let spec = market.provider(l);
        residual[c.index()].0 += spec.compute_demand;
        residual[c.index()].1 += spec.bandwidth_demand;
        sigma[c.index()] -= 1;
    }

    let mut best: Option<(Placement, f64)> = None;
    let mut consider = |p: Placement, cost: f64| {
        let better = match best {
            None => true,
            Some((bp, bc)) => {
                cost < bc - IMPROVEMENT_TOL
                    || ((cost - bc).abs() <= IMPROVEMENT_TOL && p == current && bp != current)
            }
        };
        if better {
            best = Some((p, cost));
        }
    };

    if market.provider(l).can_stay_remote() {
        consider(Placement::Remote, market.provider(l).remote_cost);
    }
    for i in market.cloudlets() {
        if market.fits(l, residual[i.index()]) {
            let cost = market.caching_cost(l, i, sigma[i.index()] + 1);
            consider(Placement::Cloudlet(i), cost);
        }
    }
    best
}

/// `true` if `l` has a profitable unilateral deviation — `O(M)`.
fn has_improving_move(state: &GameState<'_>, l: ProviderId) -> bool {
    let current_cost = state.provider_cost(l);
    match state.best_response(l) {
        Some((p, cost)) => p != state.placement(l) && cost < current_cost - IMPROVEMENT_TOL,
        None => false,
    }
}

/// `true` if no provider in `movable` has a profitable unilateral deviation.
pub fn is_nash(market: &Market, profile: &Profile, movable: &[bool]) -> bool {
    assert_eq!(movable.len(), profile.len(), "movable mask length mismatch");
    let state = GameState::new(market, profile.clone());
    is_nash_state(&state, movable)
}

/// [`is_nash`] evaluated against maintained aggregates: `O(N·M)` total,
/// fanning out across threads on large markets.
pub fn is_nash_state(state: &GameState<'_>, movable: &[bool]) -> bool {
    assert_eq!(movable.len(), state.len(), "movable mask length mismatch");
    let n = state.len();
    let workers = par_workers(n * state.market().cloudlet_count(), n);
    is_nash_with(state, movable, workers)
}

/// [`is_nash_state`] with an explicit worker count — test/bench hook for
/// exercising the parallel fan-out regardless of market size.
#[doc(hidden)]
pub fn is_nash_state_workers(state: &GameState<'_>, movable: &[bool], workers: usize) -> bool {
    assert_eq!(movable.len(), state.len(), "movable mask length mismatch");
    is_nash_with(state, movable, workers)
}

/// [`scan_best_move`]'s merge with an explicit worker count — test/bench
/// hook for exercising the parallel fan-out regardless of market size.
#[doc(hidden)]
pub fn scan_best_move_workers(
    state: &GameState<'_>,
    movable: &[bool],
    workers: usize,
) -> Option<(ProviderId, Placement, f64)> {
    assert_eq!(movable.len(), state.len(), "movable mask length mismatch");
    scan_best_move_with(state, movable, workers)
}

fn is_nash_with(state: &GameState<'_>, movable: &[bool], workers: usize) -> bool {
    let n = state.len();
    let check_range = |lo: usize, hi: usize| {
        (lo..hi).all(|k| !movable[k] || !has_improving_move(state, ProviderId(k)))
    };
    if workers <= 1 {
        return check_range(0, n);
    }
    let chunk = n.div_ceil(workers);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let check_range = &check_range;
                s.spawn(move |_| check_range(w * chunk, ((w + 1) * chunk).min(n)))
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panics) — a worker panic is already fatal; joining
            // re-raises it on the caller rather than deadlocking the scope.
            .all(|h| h.join().expect("nash verification worker panicked"))
    })
    // lint: allow(panics) — propagate worker panics to the caller.
    .expect("nash verification scope panicked")
}

/// Scans `lo..hi` for the movable provider with the largest improving gain.
/// Ties keep the earliest (smallest id) candidate, matching a sequential
/// first-max scan.
fn scan_range(
    state: &GameState<'_>,
    movable: &[bool],
    lo: usize,
    hi: usize,
) -> Option<(ProviderId, Placement, f64)> {
    let mut best_move: Option<(ProviderId, Placement, f64)> = None;
    for (k, &mv) in movable.iter().enumerate().take(hi).skip(lo) {
        if !mv {
            continue;
        }
        let l = ProviderId(k);
        let cur_cost = state.provider_cost(l);
        if let Some((p, cost)) = state.best_response(l) {
            if p != state.placement(l) && cost < cur_cost - IMPROVEMENT_TOL {
                let gain = cur_cost - cost;
                if best_move.is_none_or(|(_, _, g)| gain > g) {
                    best_move = Some((l, p, gain));
                }
            }
        }
    }
    best_move
}

/// Full `MaxGain` candidate scan, parallel when the market is large.
fn scan_best_move(state: &GameState<'_>, movable: &[bool]) -> Option<(ProviderId, Placement, f64)> {
    let n = state.len();
    let workers = par_workers(n * state.market().cloudlet_count(), n);
    scan_best_move_with(state, movable, workers)
}

fn scan_best_move_with(
    state: &GameState<'_>,
    movable: &[bool],
    workers: usize,
) -> Option<(ProviderId, Placement, f64)> {
    let n = state.len();
    if workers <= 1 {
        return scan_range(state, movable, 0, n);
    }
    let chunk = n.div_ceil(workers);
    let partials = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move |_| scan_range(state, movable, w * chunk, ((w + 1) * chunk).min(n)))
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panics) — a worker panic is already fatal; joining
            // re-raises it on the caller rather than deadlocking the scope.
            .map(|h| h.join().expect("max-gain scan worker panicked"))
            .collect::<Vec<_>>()
    })
    // lint: allow(panics) — propagate worker panics to the caller.
    .expect("max-gain scan scope panicked");
    // Merging chunk partials in ascending id order with a strict `>` keeps
    // the earliest maximum — exactly what the sequential scan picks — so the
    // dynamics are deterministic regardless of worker count.
    partials
        .into_iter()
        .flatten()
        .fold(None, |acc, cand| match acc {
            Some((_, _, g)) if cand.2 <= g => acc,
            _ => Some(cand),
        })
}

/// Best-response dynamics driver.
///
/// # Examples
///
/// ```
/// use mec_core::game::{BestResponseDynamics, MoveOrder};
/// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
/// use mec_core::strategy::Profile;
///
/// let market = Market::builder()
///     .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
///     .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
///     .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
///     .uniform_update_cost(0.1)
///     .build();
/// let mut profile = Profile::all_remote(2);
/// let movable = vec![true, true];
/// let result = BestResponseDynamics::new(MoveOrder::RoundRobin)
///     .run(&market, &mut profile, &movable);
/// assert!(result.converged);
/// ```
#[derive(Debug, Clone)]
pub struct BestResponseDynamics {
    order: MoveOrder,
    max_rounds: usize,
}

impl BestResponseDynamics {
    /// Creates a driver with the given move order and a generous default
    /// round budget.
    pub fn new(order: MoveOrder) -> Self {
        BestResponseDynamics {
            order,
            max_rounds: 10_000,
        }
    }

    /// Overrides the maximum number of sweeps before giving up.
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Runs the dynamics until no movable player can improve.
    ///
    /// The potential strictly decreases with every applied move, so on any
    /// finite market this terminates at a Nash equilibrium of the movable
    /// subgame (the fixed players act as environment).
    ///
    /// Builds a [`GameState`] once and delegates to
    /// [`BestResponseDynamics::run_state`]; callers already holding a state
    /// should call that directly and skip the profile round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `movable.len() != profile.len()`.
    pub fn run(&self, market: &Market, profile: &mut Profile, movable: &[bool]) -> Convergence {
        // Move the profile into the state (empty profiles are forbidden, so
        // park a 1-slot placeholder) and move it back out when converged.
        let taken = std::mem::replace(profile, Profile::all_remote(1));
        let mut state = GameState::new(market, taken);
        let convergence = self.run_state(&mut state, movable);
        *profile = state.into_profile();
        convergence
    }

    /// Runs the dynamics on an incremental state: each sweep is `O(N·M)`
    /// and allocation-free (the reference recompute path is `O(N·(N+M))`
    /// with `~3N` allocations per sweep). Visits providers in id order
    /// (`RoundRobin`) or applies the single largest improvement per round
    /// (`MaxGain`, scanned in parallel on large markets); both orders make
    /// exactly the moves the reference implementation makes.
    ///
    /// # Panics
    ///
    /// Panics if `movable.len() != state.len()`.
    pub fn run_state(&self, state: &mut GameState<'_>, movable: &[bool]) -> Convergence {
        let convergence = self.run_state_inner(state, movable);
        #[cfg(feature = "verify")]
        if convergence.converged {
            let mut cert = crate::verify::Certificate::new("best-response equilibrium");
            cert.extend(crate::verify::check_state(state, 1e-6))
                .extend(crate::verify::check_nash(
                    state.market(),
                    state.profile(),
                    movable,
                    IMPROVEMENT_TOL,
                ));
            cert.assert_valid();
        }
        convergence
    }

    /// Wraps the dynamics loop in the observability probes: the whole run
    /// is one `core.dynamics.run` span (time-to-Nash when it converges) and
    /// the applied-move / round totals are published as counters. Both are
    /// no-ops unless the `obs` feature is armed.
    fn run_state_inner(&self, state: &mut GameState<'_>, movable: &[bool]) -> Convergence {
        let _span = mec_obs::span("core.dynamics.run");
        let convergence = self.run_state_loop(state, movable);
        mec_obs::counter_add("core.dynamics.moves_applied", convergence.moves as u64);
        mec_obs::counter_add("core.dynamics.rounds", convergence.rounds as u64);
        convergence
    }

    fn run_state_loop(&self, state: &mut GameState<'_>, movable: &[bool]) -> Convergence {
        assert_eq!(movable.len(), state.len(), "movable mask length mismatch");
        let mut moves = 0;
        match self.order {
            MoveOrder::RoundRobin => {
                for round in 0..self.max_rounds {
                    let mut improved = false;
                    let mut attempts = 0u64;
                    for (k, &mv) in movable.iter().enumerate() {
                        if !mv {
                            continue;
                        }
                        let l = ProviderId(k);
                        let cur_cost = state.provider_cost(l);
                        attempts += 1;
                        if let Some((p, cost)) = state.best_response(l) {
                            if p != state.placement(l) && cost < cur_cost - IMPROVEMENT_TOL {
                                state.apply_move(l, p);
                                moves += 1;
                                improved = true;
                            }
                        }
                    }
                    mec_obs::counter_add("core.dynamics.moves_attempted", attempts);
                    emit_potential_gauge(state, round);
                    if !improved {
                        return Convergence {
                            rounds: round + 1,
                            moves,
                            converged: true,
                        };
                    }
                }
            }
            MoveOrder::MaxGain => {
                let n_movable = movable.iter().filter(|&&m| m).count() as u64;
                for round in 0..self.max_rounds {
                    let step = scan_best_move(state, movable);
                    mec_obs::counter_add("core.dynamics.moves_attempted", n_movable);
                    match step {
                        Some((l, p, _)) => {
                            state.apply_move(l, p);
                            moves += 1;
                            emit_potential_gauge(state, round);
                        }
                        None => {
                            return Convergence {
                                rounds: round + 1,
                                moves,
                                converged: true,
                            };
                        }
                    }
                }
            }
        }
        Convergence {
            rounds: self.max_rounds,
            moves,
            converged: false,
        }
    }

    /// The seed implementation, recomputing congestion and residuals from
    /// scratch for every candidate evaluation and cloning the profile once
    /// per `RoundRobin` round.
    ///
    /// Retained verbatim as the baseline for the differential equivalence
    /// tests and the `recompute vs incremental` benchmark
    /// (`benches/bench_dynamics.rs`, `mec-bench`'s `sweepbench`). Use
    /// [`BestResponseDynamics::run`] everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `movable.len() != profile.len()`.
    pub fn run_reference(
        &self,
        market: &Market,
        profile: &mut Profile,
        movable: &[bool],
    ) -> Convergence {
        assert_eq!(movable.len(), profile.len(), "movable mask length mismatch");
        let mut moves = 0;
        match self.order {
            MoveOrder::RoundRobin => {
                for round in 0..self.max_rounds {
                    let mut improved = false;
                    for (l, _) in profile.clone().iter() {
                        if !movable[l.index()] {
                            continue;
                        }
                        let cur_cost = profile.provider_cost(market, l);
                        if let Some((p, cost)) = best_response(market, profile, l) {
                            if p != profile.placement(l) && cost < cur_cost - IMPROVEMENT_TOL {
                                profile.set(l, p);
                                moves += 1;
                                improved = true;
                            }
                        }
                    }
                    if !improved {
                        return Convergence {
                            rounds: round + 1,
                            moves,
                            converged: true,
                        };
                    }
                }
            }
            MoveOrder::MaxGain => {
                for round in 0..self.max_rounds {
                    let mut best_move: Option<(ProviderId, Placement, f64)> = None;
                    for (l, _) in profile.iter() {
                        if !movable[l.index()] {
                            continue;
                        }
                        let cur_cost = profile.provider_cost(market, l);
                        if let Some((p, cost)) = best_response(market, profile, l) {
                            if p != profile.placement(l) && cost < cur_cost - IMPROVEMENT_TOL {
                                let gain = cur_cost - cost;
                                if best_move.is_none_or(|(_, _, g)| gain > g) {
                                    best_move = Some((l, p, gain));
                                }
                            }
                        }
                    }
                    match best_move {
                        Some((l, p, _)) => {
                            profile.set(l, p);
                            moves += 1;
                        }
                        None => {
                            return Convergence {
                                rounds: round + 1,
                                moves,
                                converged: true,
                            };
                        }
                    }
                }
            }
        }
        Convergence {
            rounds: self.max_rounds,
            moves,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_topology::CloudletId;

    fn market(n_providers: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.3, 0.2));
        for _ in 0..n_providers {
            b = b.provider(ProviderSpec::new(2.0, 10.0, 1.0, 50.0));
        }
        b.uniform_update_cost(0.2).build()
    }

    /// Heterogeneous market so MaxGain scans see distinct gains.
    fn varied_market(n_providers: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 120.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(18.0, 90.0, 0.3, 0.2))
            .cloudlet(CloudletSpec::new(12.0, 70.0, 0.7, 0.4));
        for k in 0..n_providers {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 4) as f64 * 0.5,
                5.0 + (k % 3) as f64 * 2.0,
                0.5 + (k % 5) as f64 * 0.3,
                20.0 + (k % 7) as f64 * 4.0,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn best_response_prefers_cheapest_cloudlet() {
        let m = market(1);
        let p = Profile::all_remote(1);
        let (placement, cost) = best_response(&m, &p, ProviderId(0)).unwrap();
        // CL1 has price 0.5 vs CL0's 1.0; flat cost 0.5+1.0+0.2=1.7.
        assert_eq!(placement, Placement::Cloudlet(CloudletId(1)));
        assert!((cost - 1.7).abs() < 1e-12);
    }

    #[test]
    fn dynamics_converge_and_reach_nash() {
        let m = market(8);
        let mut p = Profile::all_remote(8);
        let movable = vec![true; 8];
        let res = BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        assert!(res.converged);
        assert!(is_nash(&m, &p, &movable));
        assert!(p.is_feasible(&m));
    }

    #[test]
    fn players_balance_across_cloudlets() {
        // With symmetric providers, equilibrium congestion differs by at
        // most ~price ratio; assert both cloudlets are used.
        let m = market(10);
        let mut p = Profile::all_remote(10);
        let movable = vec![true; 10];
        BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        let sigma = p.congestion(&m);
        assert!(sigma[0] > 0 && sigma[1] > 0, "sigma {sigma:?}");
    }

    #[test]
    fn potential_decreases_along_improving_moves() {
        let m = market(6);
        let mut p = Profile::all_remote(6);
        let mut phi = rosenthal_potential(&m, &p);
        for _ in 0..50 {
            let mut moved = false;
            for (l, _) in p.clone().iter() {
                let cur = p.provider_cost(&m, l);
                if let Some((np, cost)) = best_response(&m, &p, l) {
                    if np != p.placement(l) && cost < cur - IMPROVEMENT_TOL {
                        p.set(l, np);
                        let nphi = rosenthal_potential(&m, &p);
                        assert!(
                            nphi < phi - IMPROVEMENT_TOL / 2.0,
                            "potential did not decrease: {phi} -> {nphi}"
                        );
                        // Potential change equals the mover's cost change.
                        assert!(((phi - nphi) - (cur - cost)).abs() < 1e-9);
                        phi = nphi;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn fixed_players_do_not_move() {
        let m = market(4);
        let mut p = Profile::all_remote(4);
        let movable = vec![false, true, true, true];
        BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        assert_eq!(p.placement(ProviderId(0)), Placement::Remote);
    }

    #[test]
    fn max_gain_reaches_nash_too() {
        let m = market(8);
        let mut p = Profile::all_remote(8);
        let movable = vec![true; 8];
        let res = BestResponseDynamics::new(MoveOrder::MaxGain).run(&m, &mut p, &movable);
        assert!(res.converged);
        assert!(is_nash(&m, &p, &movable));
    }

    #[test]
    fn capacity_limits_moves() {
        // Cloudlet fits only one provider; the other must go remote or CL1.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(2.0, 10.0, 0.1, 0.1))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, 3.0))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, 3.0))
            .uniform_update_cost(0.0)
            .build();
        let mut p = Profile::all_remote(2);
        let movable = vec![true; 2];
        BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        assert!(p.is_feasible(&m));
        let cached = p
            .iter()
            .filter(|(_, pl)| matches!(pl, Placement::Cloudlet(_)))
            .count();
        assert_eq!(cached, 1);
    }

    #[test]
    fn no_candidates_keeps_current() {
        // Remote forbidden and cloudlet full of the OTHER provider: best
        // response for p1 is None only if even its own current placement
        // does not fit. Construct: p0 occupies CL0 fully; p1 remote
        // forbidden... then p1 must already be somewhere; give p1 a distinct
        // cloudlet CL1 it fully occupies. Its best response is CL1 itself.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(2.0, 10.0, 0.1, 0.1))
            .cloudlet(CloudletSpec::new(2.0, 10.0, 0.9, 0.9))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, f64::INFINITY))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, f64::INFINITY))
            .uniform_update_cost(0.0)
            .build();
        let mut p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(1)),
        ]);
        let movable = vec![true; 2];
        let res = BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        assert!(res.converged);
        // p1 cannot move to CL0 (full); stays at CL1.
        assert_eq!(
            p.placement(ProviderId(1)),
            Placement::Cloudlet(CloudletId(1))
        );
    }

    #[test]
    fn remote_attractive_when_congested() {
        // Tiny remote cost: equilibrium leaves everyone remote.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(100.0, 100.0, 5.0, 5.0))
            .provider(ProviderSpec::new(1.0, 1.0, 1.0, 0.5))
            .provider(ProviderSpec::new(1.0, 1.0, 1.0, 0.5))
            .uniform_update_cost(0.0)
            .build();
        let mut p = Profile::all_remote(2);
        let movable = vec![true; 2];
        BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        for (_, pl) in p.iter() {
            assert_eq!(pl, Placement::Remote);
        }
    }

    #[test]
    fn incremental_run_matches_reference_round_robin() {
        let m = varied_market(40);
        let movable: Vec<bool> = (0..40).map(|k| k % 6 != 0).collect();
        let mut p_inc = Profile::all_remote(40);
        let mut p_ref = Profile::all_remote(40);
        let driver = BestResponseDynamics::new(MoveOrder::RoundRobin);
        let c_inc = driver.run(&m, &mut p_inc, &movable);
        let c_ref = driver.run_reference(&m, &mut p_ref, &movable);
        assert_eq!(c_inc, c_ref);
        assert_eq!(p_inc, p_ref);
    }

    #[test]
    fn incremental_run_matches_reference_max_gain() {
        let m = varied_market(30);
        let movable = vec![true; 30];
        let mut p_inc = Profile::all_remote(30);
        let mut p_ref = Profile::all_remote(30);
        let driver = BestResponseDynamics::new(MoveOrder::MaxGain);
        let c_inc = driver.run(&m, &mut p_inc, &movable);
        let c_ref = driver.run_reference(&m, &mut p_ref, &movable);
        assert_eq!(c_inc, c_ref);
        assert_eq!(p_inc, p_ref);
    }

    #[test]
    fn parallel_scan_matches_sequential_at_any_worker_count() {
        let m = varied_market(23);
        // A mid-dynamics state: run a few round-robin sweeps first.
        let mut state = GameState::all_remote(&m);
        let movable: Vec<bool> = (0..23).map(|k| k % 5 != 1).collect();
        BestResponseDynamics::new(MoveOrder::RoundRobin)
            .max_rounds(1)
            .run_state(&mut state, &movable);
        let sequential = scan_best_move_with(&state, &movable, 1);
        for workers in 2..=7 {
            assert_eq!(
                scan_best_move_with(&state, &movable, workers),
                sequential,
                "worker count {workers} changed the scan result"
            );
        }
    }

    #[test]
    fn parallel_nash_check_matches_sequential() {
        let m = varied_market(17);
        let movable = vec![true; 17];
        let mut state = GameState::all_remote(&m);
        // Mid-dynamics (not an equilibrium) and post-convergence states.
        BestResponseDynamics::new(MoveOrder::RoundRobin)
            .max_rounds(1)
            .run_state(&mut state, &movable);
        for workers in [1, 2, 3, 5] {
            assert_eq!(
                is_nash_with(&state, &movable, workers),
                is_nash_with(&state, &movable, 1)
            );
        }
        BestResponseDynamics::new(MoveOrder::RoundRobin).run_state(&mut state, &movable);
        for workers in [1, 2, 3, 5] {
            assert!(is_nash_with(&state, &movable, workers));
        }
    }

    #[test]
    fn run_preserves_profile_on_entry_and_exit() {
        // `run` takes the profile by `&mut` and must leave the converged
        // profile in place (it is moved through a GameState internally).
        let m = market(5);
        let mut p = Profile::all_remote(5);
        let movable = vec![true; 5];
        BestResponseDynamics::new(MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        assert_eq!(p.len(), 5);
        assert!(is_nash(&m, &p, &movable));
    }
}
