//! Invariant certificates for market solutions.
//!
//! Every checker here recomputes the claimed property **from first
//! principles** — raw specs, raw placements, the Eq. (1)–(3) arithmetic
//! written out — sharing no code with the algorithm whose output it
//! certifies. A [`Certificate`] bundles the violations found (hopefully
//! none) with the source location that requested the check, so a failed
//! certification names the call site, not this module.
//!
//! Checkers:
//!
//! * [`check_capacity`] — Eq. (4)–(5): no cloudlet's compute or bandwidth
//!   capacity is exceeded (with the model's `1e-9` slack);
//! * [`check_congestion`] — claimed `|σ_i|` counts match a recount of the
//!   profile;
//! * [`check_cost_reconstruction`] — a reported social cost matches a
//!   ground-up re-evaluation of Eq. (1)–(3) summed over providers;
//! * [`check_state`] — a [`GameState`]'s maintained congestion counts and
//!   loads agree with a recount of its profile;
//! * [`check_nash`] — a Nash certificate: every unilateral deviation of
//!   every movable provider is enumerated and priced; any strictly
//!   improving one (beyond `tol`) is reported. Independent of
//!   [`crate::game::is_nash`], which runs on the incremental
//!   [`GameState`].
//!
//! With the `verify` cargo feature enabled, the algorithm entry points
//! ([`crate::appro::appro`], [`crate::lcf::lcf`], the best-response
//! dynamics, [`crate::local_search::social_local_search`]) self-certify
//! their outputs and panic with a full report on any violation. The
//! lower layers do the same: `mec-gap/verify` certifies Shmoys–Tardos
//! assignments, `mec-lp/verify` certifies every simplex solve.

use mec_topology::CloudletId;

use crate::model::{Market, ProviderId};
use crate::state::GameState;
use crate::strategy::{Placement, Profile};

/// Capacity slack used throughout the model (matches
/// [`Profile::is_feasible`] and [`Market::fits`]).
const CAP_SLACK: f64 = 1e-9;

/// A single broken invariant found in a profile, state, or solution.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A cloudlet's computing capacity (Eq. 4) is exceeded.
    ComputeOverload {
        /// The overloaded cloudlet.
        cloudlet: CloudletId,
        /// Aggregate compute demand placed on it.
        load: f64,
        /// Its computing capacity `C(CL_i)`.
        capacity: f64,
    },
    /// A cloudlet's bandwidth capacity (Eq. 5) is exceeded.
    BandwidthOverload {
        /// The overloaded cloudlet.
        cloudlet: CloudletId,
        /// Aggregate bandwidth demand placed on it.
        load: f64,
        /// Its bandwidth capacity `B(CL_i)`.
        capacity: f64,
    },
    /// A claimed congestion count `|σ_i|` disagrees with a recount.
    CongestionMismatch {
        /// The cloudlet.
        cloudlet: CloudletId,
        /// The count as claimed (or maintained incrementally).
        claimed: usize,
        /// The count obtained by re-scanning the profile.
        counted: usize,
    },
    /// A [`GameState`]'s maintained load drifted from its profile.
    LoadDrift {
        /// The cloudlet.
        cloudlet: CloudletId,
        /// `"compute"` or `"bandwidth"`.
        resource: &'static str,
        /// The incrementally maintained value.
        maintained: f64,
        /// The value recomputed from the profile.
        recomputed: f64,
    },
    /// A reported social cost disagrees with Eq. (1)–(3) re-evaluated
    /// from raw market data.
    SocialCostMismatch {
        /// The cost as reported by the algorithm.
        reported: f64,
        /// The cost recomputed from first principles.
        recomputed: f64,
    },
    /// A provider has a strictly improving unilateral deviation, so the
    /// profile is **not** a Nash equilibrium.
    ProfitableDeviation {
        /// The provider that can improve.
        provider: ProviderId,
        /// Its current placement.
        from: Placement,
        /// The feasible placement it would rather take.
        to: Placement,
        /// Its cost under the current profile.
        current_cost: f64,
        /// Its cost after deviating (congestion of the target adjusted).
        deviation_cost: f64,
    },
    /// A violation reported by the GAP layer (`mec-gap`).
    Gap(mec_gap::GapViolation),
    /// A violation reported by the LP layer (`mec-lp`).
    Lp(mec_lp::LpViolation),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ComputeOverload {
                cloudlet,
                load,
                capacity,
            } => write!(
                f,
                "{cloudlet}: compute load {load} exceeds capacity {capacity}"
            ),
            Violation::BandwidthOverload {
                cloudlet,
                load,
                capacity,
            } => write!(
                f,
                "{cloudlet}: bandwidth load {load} exceeds capacity {capacity}"
            ),
            Violation::CongestionMismatch {
                cloudlet,
                claimed,
                counted,
            } => write!(
                f,
                "{cloudlet}: claimed congestion {claimed}, recount gives {counted}"
            ),
            Violation::LoadDrift {
                cloudlet,
                resource,
                maintained,
                recomputed,
            } => write!(
                f,
                "{cloudlet}: maintained {resource} load {maintained} drifted from recomputed {recomputed}"
            ),
            Violation::SocialCostMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "reported social cost {reported} != recomputed {recomputed}"
            ),
            Violation::ProfitableDeviation {
                provider,
                from,
                to,
                current_cost,
                deviation_cost,
            } => write!(
                f,
                "{provider} can deviate {from} -> {to}, cutting cost {current_cost} -> {deviation_cost}"
            ),
            Violation::Gap(v) => write!(f, "gap: {v}"),
            Violation::Lp(v) => write!(f, "lp: {v}"),
        }
    }
}

impl From<mec_gap::GapViolation> for Violation {
    fn from(v: mec_gap::GapViolation) -> Self {
        Violation::Gap(v)
    }
}

impl From<mec_lp::LpViolation> for Violation {
    fn from(v: mec_lp::LpViolation) -> Self {
        Violation::Lp(v)
    }
}

/// The outcome of certifying one subject: the violations found, tagged
/// with the source location that requested the check.
#[derive(Debug, Clone)]
pub struct Certificate {
    subject: &'static str,
    location: &'static std::panic::Location<'static>,
    violations: Vec<Violation>,
}

impl Certificate {
    /// Starts an empty (valid) certificate for `subject`. The caller's
    /// source location is captured for error reports.
    #[track_caller]
    pub fn new(subject: &'static str) -> Self {
        Certificate {
            subject,
            location: std::panic::Location::caller(),
            violations: Vec::new(),
        }
    }

    /// What is being certified.
    pub fn subject(&self) -> &'static str {
        self.subject
    }

    /// Source location of the [`Certificate::new`] call.
    pub fn location(&self) -> &'static std::panic::Location<'static> {
        self.location
    }

    /// Adds violations (from any checker, or the lower-layer types via
    /// `From`).
    pub fn extend<V: Into<Violation>, I: IntoIterator<Item = V>>(&mut self, vs: I) -> &mut Self {
        self.violations.extend(vs.into_iter().map(Into::into));
        self
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` if no violation was recorded.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full report if any violation was recorded.
    ///
    /// # Panics
    ///
    /// Panics when [`Certificate::is_valid`] is `false`.
    pub fn assert_valid(&self) {
        assert!(self.is_valid(), "{self}"); // lint: allow(panics)
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.violations.is_empty() {
            return write!(
                f,
                "certificate `{}` ({}): valid",
                self.subject, self.location
            );
        }
        writeln!(
            f,
            "certificate `{}` ({}): {} violation(s)",
            self.subject,
            self.location,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Recounts `|σ_i|` and `(compute, bandwidth)` loads directly from raw
/// placements and provider specs.
fn recount(market: &Market, profile: &Profile) -> (Vec<usize>, Vec<(f64, f64)>) {
    let m = market.cloudlet_count();
    let mut sigma = vec![0usize; m];
    let mut loads = vec![(0.0f64, 0.0f64); m];
    for (l, p) in profile.iter() {
        if let Placement::Cloudlet(c) = p {
            let spec = market.provider(l);
            sigma[c.index()] += 1;
            loads[c.index()].0 += spec.compute_demand;
            loads[c.index()].1 += spec.bandwidth_demand;
        }
    }
    (sigma, loads)
}

/// Eq. (3) written out from raw specs: the cost of caching `l` at `c`
/// with `sigma` providers (including `l`) cached there.
fn eq3_cost(market: &Market, l: ProviderId, c: CloudletId, sigma: usize) -> f64 {
    let cl = market.cloudlet(c);
    (cl.alpha + cl.beta) * sigma as f64
        + market.provider(l).instantiation_cost
        + market.update_cost(l, c)
}

/// Certifies Eq. (4)–(5): no cloudlet's compute or bandwidth capacity
/// is exceeded by `profile` (beyond the model's `1e-9` slack).
pub fn check_capacity(market: &Market, profile: &Profile) -> Vec<Violation> {
    let (_, loads) = recount(market, profile);
    let mut out = Vec::new();
    for i in market.cloudlets() {
        let spec = market.cloudlet(i);
        let (a, b) = loads[i.index()];
        if a > spec.compute_capacity + CAP_SLACK {
            out.push(Violation::ComputeOverload {
                cloudlet: i,
                load: a,
                capacity: spec.compute_capacity,
            });
        }
        if b > spec.bandwidth_capacity + CAP_SLACK {
            out.push(Violation::BandwidthOverload {
                cloudlet: i,
                load: b,
                capacity: spec.bandwidth_capacity,
            });
        }
    }
    out
}

/// Certifies that `claimed` congestion counts match a recount of the
/// profile's placements.
///
/// # Panics
///
/// Panics if `claimed` does not cover every cloudlet (caller bug, not a
/// certified property).
pub fn check_congestion(market: &Market, profile: &Profile, claimed: &[usize]) -> Vec<Violation> {
    assert_eq!(
        claimed.len(),
        market.cloudlet_count(),
        "claimed congestion must cover every cloudlet"
    );
    let (sigma, _) = recount(market, profile);
    market
        .cloudlets()
        .filter(|i| claimed[i.index()] != sigma[i.index()])
        .map(|i| Violation::CongestionMismatch {
            cloudlet: i,
            claimed: claimed[i.index()],
            counted: sigma[i.index()],
        })
        .collect()
}

/// Certifies a reported social cost against a ground-up re-evaluation of
/// Eq. (1)–(3) (congestion term, instantiation, update cost, remote
/// cost) summed over all providers. `tol` is scaled by the magnitude of
/// the recomputed value.
pub fn check_cost_reconstruction(
    market: &Market,
    profile: &Profile,
    reported: f64,
    tol: f64,
) -> Vec<Violation> {
    let (sigma, _) = recount(market, profile);
    let mut recomputed = 0.0;
    for (l, p) in profile.iter() {
        recomputed += match p {
            Placement::Remote => market.provider(l).remote_cost,
            Placement::Cloudlet(c) => eq3_cost(market, l, c, sigma[c.index()]),
        };
    }
    if mec_num::approx_eq(reported, recomputed, tol * (1.0 + recomputed.abs())) {
        Vec::new()
    } else {
        vec![Violation::SocialCostMismatch {
            reported,
            recomputed,
        }]
    }
}

/// Certifies a [`GameState`]'s incrementally maintained congestion
/// counts and loads against a recount of its profile. `tol` bounds the
/// tolerated floating-point drift on loads; counts must match exactly.
pub fn check_state(state: &GameState<'_>, tol: f64) -> Vec<Violation> {
    let market = state.market();
    let (sigma, loads) = recount(market, state.profile());
    let mut out = Vec::new();
    for i in market.cloudlets() {
        let maintained = state.congestion(i);
        if maintained != sigma[i.index()] {
            out.push(Violation::CongestionMismatch {
                cloudlet: i,
                claimed: maintained,
                counted: sigma[i.index()],
            });
        }
        let (ma, mb) = state.load(i);
        let (ra, rb) = loads[i.index()];
        if !mec_num::approx_eq(ma, ra, tol) {
            out.push(Violation::LoadDrift {
                cloudlet: i,
                resource: "compute",
                maintained: ma,
                recomputed: ra,
            });
        }
        if !mec_num::approx_eq(mb, rb, tol) {
            out.push(Violation::LoadDrift {
                cloudlet: i,
                resource: "bandwidth",
                maintained: mb,
                recomputed: rb,
            });
        }
    }
    out
}

/// Nash certificate: enumerates **every** unilateral deviation of every
/// movable provider from first principles and reports any that strictly
/// improves the deviator's cost by more than `tol`.
///
/// A deviation of provider `l` to cloudlet `i` is admissible when `l`'s
/// demands fit `i`'s residual capacity computed over the *other*
/// providers, and costs `(α_i + β_i)(|σ_i| + 1) + c_l_ins + c_{l,i}_bdw`
/// (Eq. 3 with `l` joining). A deviation to the remote cloud is
/// admissible when the provider's remote cost is finite. With
/// `tol = `[`crate::game::IMPROVEMENT_TOL`], an empty result is exactly
/// the condition [`crate::game::is_nash`] tests — but computed here by
/// exhaustive enumeration over the raw profile, independent of the
/// incremental [`GameState`] machinery.
///
/// # Panics
///
/// Panics if `movable` does not cover every provider.
pub fn check_nash(
    market: &Market,
    profile: &Profile,
    movable: &[bool],
    tol: f64,
) -> Vec<Violation> {
    assert_eq!(
        movable.len(),
        market.provider_count(),
        "movable mask must cover every provider"
    );
    let (sigma, loads) = recount(market, profile);
    let mut out = Vec::new();
    for (l, current) in profile.iter() {
        if !movable[l.index()] {
            continue;
        }
        let spec = market.provider(l);
        let current_cost = match current {
            Placement::Remote => spec.remote_cost,
            Placement::Cloudlet(c) => eq3_cost(market, l, c, sigma[c.index()]),
        };
        // Deviation to the remote cloud.
        if current != Placement::Remote
            && spec.can_stay_remote()
            && spec.remote_cost < current_cost - tol
        {
            out.push(Violation::ProfitableDeviation {
                provider: l,
                from: current,
                to: Placement::Remote,
                current_cost,
                deviation_cost: spec.remote_cost,
            });
        }
        // Deviation to every other cloudlet with room for `l`.
        for i in market.cloudlets() {
            if current == Placement::Cloudlet(i) {
                continue;
            }
            // `l` is not cached at `i`, so the recounted load is already
            // the others-only load.
            let cl = market.cloudlet(i);
            let (a, b) = loads[i.index()];
            let free = (cl.compute_capacity - a, cl.bandwidth_capacity - b);
            if !market.fits(l, free) {
                continue;
            }
            let cost = eq3_cost(market, l, i, sigma[i.index()] + 1);
            if cost < current_cost - tol {
                out.push(Violation::ProfitableDeviation {
                    provider: l,
                    from: current,
                    to: Placement::Cloudlet(i),
                    current_cost,
                    deviation_cost: cost,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{is_nash, BestResponseDynamics, MoveOrder, IMPROVEMENT_TOL};
    use crate::model::{CloudletSpec, ProviderSpec};

    fn market() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(8.0, 40.0, 0.2, 0.3))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(3.0, 12.0, 1.5, 12.0))
            .provider(ProviderSpec::new(1.0, 8.0, 0.5, 6.0))
            .uniform_update_cost(0.4)
            .build()
    }

    fn cl(i: usize) -> Placement {
        Placement::Cloudlet(CloudletId(i))
    }

    #[test]
    fn feasible_profile_passes_capacity() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(1), Placement::Remote]);
        assert_eq!(check_capacity(&m, &p), vec![]);
    }

    #[test]
    fn overload_is_reported_per_resource() {
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(2.0, 100.0, 0.1, 0.1))
            .provider(ProviderSpec::new(2.0, 60.0, 1.0, 5.0))
            .provider(ProviderSpec::new(2.0, 60.0, 1.0, 5.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![cl(0), cl(0)]);
        let v = check_capacity(&m, &p);
        assert!(v.iter().any(
            |v| matches!(v, Violation::ComputeOverload { cloudlet, .. } if cloudlet.index() == 0)
        ));
        assert!(v.iter().any(
            |v| matches!(v, Violation::BandwidthOverload { cloudlet, .. } if cloudlet.index() == 0)
        ));
    }

    #[test]
    fn congestion_recount_agrees_and_disagrees() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(0), Placement::Remote]);
        assert_eq!(check_congestion(&m, &p, &[2, 0]), vec![]);
        let v = check_congestion(&m, &p, &[1, 1]);
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            Violation::CongestionMismatch {
                claimed: 1,
                counted: 2,
                ..
            }
        ));
    }

    #[test]
    fn cost_reconstruction_matches_social_cost() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(1), Placement::Remote]);
        let reported = p.social_cost(&m);
        assert_eq!(check_cost_reconstruction(&m, &p, reported, 1e-9), vec![]);
        let v = check_cost_reconstruction(&m, &p, reported + 1.0, 1e-9);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::SocialCostMismatch { .. }));
    }

    #[test]
    fn state_certifies_after_moves() {
        let m = market();
        let mut s = GameState::new(&m, Profile::all_remote(3));
        s.apply_move(ProviderId(0), cl(0));
        s.apply_move(ProviderId(1), cl(1));
        s.apply_move(ProviderId(0), cl(1));
        assert_eq!(check_state(&s, 1e-9), vec![]);
    }

    // Acceptance criterion: the Nash certificate verifier rejects a
    // hand-built non-equilibrium profile.
    #[test]
    fn rejects_hand_built_non_equilibrium() {
        // CL0 price 1.0/service, CL1 price 0.5/service, same update cost.
        // Both providers crowd CL0 (cost 2.0+ins each) while CL1 is empty
        // (deviation cost 0.5+ins): blatantly unstable.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.25, 0.25))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![cl(0), cl(0)]);
        let v = check_nash(&m, &p, &[true, true], IMPROVEMENT_TOL);
        assert!(
            v.iter().any(|v| matches!(
                v,
                Violation::ProfitableDeviation {
                    to: Placement::Cloudlet(c),
                    ..
                } if c.index() == 1
            )),
            "expected a profitable deviation to CL1, got {v:?}"
        );
        // And `is_nash` agrees the profile is unstable.
        assert!(!is_nash(&m, &p, &[true, true]));
    }

    #[test]
    fn converged_dynamics_pass_the_nash_certificate() {
        let m = market();
        let mut profile = Profile::all_remote(3);
        let conv = BestResponseDynamics::new(MoveOrder::RoundRobin).run(
            &m,
            &mut profile,
            &[true, true, true],
        );
        assert!(conv.converged);
        assert_eq!(
            check_nash(&m, &profile, &[true, true, true], IMPROVEMENT_TOL),
            vec![]
        );
    }

    #[test]
    fn pinned_providers_are_not_probed() {
        // Provider 0 is pinned at expensive CL0; with it immovable the
        // certificate must ignore its obvious deviation.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 2.0, 2.0))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![cl(0)]);
        assert!(!check_nash(&m, &p, &[true], IMPROVEMENT_TOL).is_empty());
        assert_eq!(check_nash(&m, &p, &[false], IMPROVEMENT_TOL), vec![]);
    }

    #[test]
    fn full_cloudlet_is_not_a_deviation_target() {
        // CL1 is cheaper but already full: no admissible deviation.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(1.0, 5.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![cl(0), cl(1)]);
        let v = check_nash(&m, &p, &[true, true], IMPROVEMENT_TOL);
        assert!(
            !v.iter().any(|v| matches!(
                v,
                Violation::ProfitableDeviation { provider, .. } if provider.index() == 0
            )),
            "provider 0 must not be offered the full CL1: {v:?}"
        );
    }

    #[test]
    fn certificate_collects_and_asserts() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(0), Placement::Remote]);
        let mut cert = Certificate::new("test-profile");
        cert.extend(check_capacity(&m, &p))
            .extend(check_congestion(&m, &p, &[2, 0]));
        assert!(cert.is_valid());
        cert.assert_valid(); // must not panic
        assert_eq!(cert.subject(), "test-profile");
        assert!(cert.to_string().contains("valid"));
    }

    #[test]
    #[should_panic(expected = "certificate `bad-profile`")]
    fn invalid_certificate_panics_with_report() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(0), Placement::Remote]);
        let mut cert = Certificate::new("bad-profile");
        cert.extend(check_congestion(&m, &p, &[0, 2]));
        assert!(!cert.is_valid());
        cert.assert_valid();
    }

    #[test]
    fn lower_layer_violations_wrap() {
        let g: Violation = mec_gap::GapViolation::BinOutOfRange { item: 1, bin: 9 }.into();
        assert!(g.to_string().starts_with("gap:"));
        let l: Violation = mec_lp::LpViolation::NegativeVariable {
            index: 0,
            value: -1.0,
        }
        .into();
        assert!(l.to_string().starts_with("lp:"));
    }

    #[test]
    fn certificate_records_location() {
        let cert = Certificate::new("here");
        assert!(cert.location().file().ends_with("verify.rs"));
    }

    #[test]
    fn violations_render() {
        let m = market();
        let p = Profile::new(vec![cl(0), cl(0), cl(0)]);
        for v in check_congestion(&m, &p, &[0, 1])
            .into_iter()
            .chain(check_cost_reconstruction(&m, &p, -1.0, 1e-9))
        {
            assert!(!v.to_string().is_empty());
        }
    }
}
