//! Generalized congestion cost models.
//!
//! The paper adopts the proportional model `(α_i + β_i)·|σ_i|` "for
//! simplicity", noting that the derivation "relies only on the
//! non-decreasing of cost with congestion levels" and "can be easily
//! extended to consider other complicated non-decreasing cost models"
//! (Section II-C). This module delivers that extension: a family of
//! non-decreasing congestion price curves plus a generalized congestion
//! game over them. Every model keeps the game an exact potential game
//! (Rosenthal's potential sums the price curve), so best-response dynamics
//! still converge to a pure Nash equilibrium.

use crate::game::IMPROVEMENT_TOL;
use crate::model::{Market, ProviderId};
use crate::strategy::{Placement, Profile};

/// A non-decreasing congestion price curve.
///
/// `price(base, k)` is what **one** provider pays at a cloudlet whose
/// congestion coefficient sum is `base = α_i + β_i` when `k` providers
/// (including itself) are cached there.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CongestionModel {
    /// The paper's proportional model: `base · k`.
    #[default]
    Linear,
    /// Polynomial: `base · k^degree` (degree ≥ 1 keeps it convex).
    Polynomial {
        /// Exponent of the congestion level.
        degree: u32,
    },
    /// M/M/1-style delay pricing: `base · k / (capacity − k)` while
    /// `k < capacity`, and a hard wall (very large price) at or beyond it.
    /// Models processing-delay blowup as a cloudlet saturates.
    Mm1 {
        /// Effective service capacity (providers) of a cloudlet.
        capacity: usize,
    },
}

/// Price one provider pays under this model at congestion `k ≥ 1`.
///
/// # Panics
///
/// Panics if `k == 0` (a cached provider always counts itself).
impl CongestionModel {
    /// Evaluates the price curve.
    pub fn price(&self, base: f64, k: usize) -> f64 {
        assert!(k >= 1, "congestion includes the provider itself");
        match self {
            CongestionModel::Linear => base * k as f64,
            CongestionModel::Polynomial { degree } => base * (k as f64).powi(*degree as i32),
            CongestionModel::Mm1 { capacity } => {
                if k < *capacity {
                    base * k as f64 / (*capacity - k) as f64
                } else {
                    // Saturated: effectively forbidden.
                    1e12
                }
            }
        }
    }

    /// Rosenthal potential contribution of a cloudlet with congestion `s`:
    /// `Σ_{k=1..s} price(base, k)`.
    pub fn potential_term(&self, base: f64, s: usize) -> f64 {
        (1..=s).map(|k| self.price(base, k)).sum()
    }

    /// `true` if the curve is non-decreasing over `1..=max_k` (sanity
    /// check used by tests and debug assertions).
    pub fn is_non_decreasing(&self, base: f64, max_k: usize) -> bool {
        (1..max_k).all(|k| self.price(base, k + 1) >= self.price(base, k) - 1e-12)
    }
}

/// The congestion game of Section II-E generalized over a
/// [`CongestionModel`]. With [`CongestionModel::Linear`] it coincides with
/// [`crate::game`].
#[derive(Debug, Clone)]
pub struct GeneralizedGame<'a> {
    market: &'a Market,
    model: CongestionModel,
}

impl<'a> GeneralizedGame<'a> {
    /// Wraps a market with a congestion model.
    pub fn new(market: &'a Market, model: CongestionModel) -> Self {
        GeneralizedGame { market, model }
    }

    /// The wrapped market.
    pub fn market(&self) -> &Market {
        self.market
    }

    /// The congestion model.
    pub fn model(&self) -> CongestionModel {
        self.model
    }

    /// Cost of provider `l` under `profile` (generalized Eq. 3/5).
    pub fn provider_cost(&self, profile: &Profile, l: ProviderId) -> f64 {
        match profile.placement(l) {
            Placement::Remote => self.market.provider(l).remote_cost,
            Placement::Cloudlet(i) => {
                let sigma = profile.congestion(self.market)[i.index()];
                self.model
                    .price(self.market.cloudlet(i).congestion_price(), sigma)
                    + self.market.provider(l).instantiation_cost
                    + self.market.update_cost(l, i)
            }
        }
    }

    /// Social cost under `profile` (generalized Eq. 6).
    pub fn social_cost(&self, profile: &Profile) -> f64 {
        let sigma = profile.congestion(self.market);
        profile
            .iter()
            .map(|(l, p)| match p {
                Placement::Remote => self.market.provider(l).remote_cost,
                Placement::Cloudlet(i) => {
                    self.model
                        .price(self.market.cloudlet(i).congestion_price(), sigma[i.index()])
                        + self.market.provider(l).instantiation_cost
                        + self.market.update_cost(l, i)
                }
            })
            .sum()
    }

    /// Rosenthal potential of `profile` under this model.
    pub fn potential(&self, profile: &Profile) -> f64 {
        let sigma = profile.congestion(self.market);
        let mut phi = 0.0;
        for i in self.market.cloudlets() {
            phi += self
                .model
                .potential_term(self.market.cloudlet(i).congestion_price(), sigma[i.index()]);
        }
        for (l, p) in profile.iter() {
            match p {
                Placement::Remote => phi += self.market.provider(l).remote_cost,
                Placement::Cloudlet(i) => {
                    phi +=
                        self.market.provider(l).instantiation_cost + self.market.update_cost(l, i);
                }
            }
        }
        phi
    }

    /// Best response of `l` against the rest of `profile` (capacity-aware).
    pub fn best_response(&self, profile: &Profile, l: ProviderId) -> Option<(Placement, f64)> {
        let market = self.market;
        let current = profile.placement(l);
        let mut residual = profile.residual(market);
        let mut sigma = profile.congestion(market);
        if let Placement::Cloudlet(c) = current {
            let spec = market.provider(l);
            residual[c.index()].0 += spec.compute_demand;
            residual[c.index()].1 += spec.bandwidth_demand;
            sigma[c.index()] -= 1;
        }
        let mut best: Option<(Placement, f64)> = None;
        let mut consider = |p: Placement, cost: f64| {
            let better = match best {
                None => true,
                Some((bp, bc)) => {
                    cost < bc - IMPROVEMENT_TOL
                        || ((cost - bc).abs() <= IMPROVEMENT_TOL && p == current && bp != current)
                }
            };
            if better {
                best = Some((p, cost));
            }
        };
        if market.provider(l).can_stay_remote() {
            consider(Placement::Remote, market.provider(l).remote_cost);
        }
        for i in market.cloudlets() {
            if market.fits(l, residual[i.index()]) {
                let cost = self
                    .model
                    .price(market.cloudlet(i).congestion_price(), sigma[i.index()] + 1)
                    + market.provider(l).instantiation_cost
                    + market.update_cost(l, i);
                consider(Placement::Cloudlet(i), cost);
            }
        }
        best
    }

    /// Round-robin best-response dynamics to a Nash equilibrium.
    ///
    /// Returns the number of improving moves, or `None` if the round budget
    /// was exhausted (cannot happen for finite non-decreasing models — the
    /// potential strictly decreases per move).
    pub fn run_dynamics(&self, profile: &mut Profile, max_rounds: usize) -> Option<usize> {
        let mut moves = 0;
        for _ in 0..max_rounds {
            let mut improved = false;
            for (l, _) in profile.clone().iter() {
                let cur = self.provider_cost(profile, l);
                if let Some((p, cost)) = self.best_response(profile, l) {
                    if p != profile.placement(l) && cost < cur - IMPROVEMENT_TOL {
                        profile.set(l, p);
                        moves += 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                return Some(moves);
            }
        }
        None
    }

    /// `true` if no provider has a profitable unilateral deviation.
    pub fn is_nash(&self, profile: &Profile) -> bool {
        for (l, _) in profile.iter() {
            let cur = self.provider_cost(profile, l);
            if let Some((p, cost)) = self.best_response(profile, l) {
                if p != profile.placement(l) && cost < cur - IMPROVEMENT_TOL {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game;
    use crate::model::{CloudletSpec, ProviderSpec};

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.3, 0.2));
        for _ in 0..n {
            b = b.provider(ProviderSpec::new(2.0, 10.0, 1.0, 50.0));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn all_models_non_decreasing() {
        for model in [
            CongestionModel::Linear,
            CongestionModel::Polynomial { degree: 2 },
            CongestionModel::Polynomial { degree: 3 },
            CongestionModel::Mm1 { capacity: 10 },
        ] {
            assert!(model.is_non_decreasing(0.7, 20), "{model:?}");
        }
    }

    #[test]
    fn linear_matches_base_game() {
        let m = market(6);
        let g = GeneralizedGame::new(&m, CongestionModel::Linear);
        let mut p = Profile::all_remote(6);
        let movable = vec![true; 6];
        game::BestResponseDynamics::new(game::MoveOrder::RoundRobin).run(&m, &mut p, &movable);
        // Same profile evaluated by both machineries agrees.
        for (l, _) in p.iter() {
            assert!((g.provider_cost(&p, l) - p.provider_cost(&m, l)).abs() < 1e-12);
        }
        assert!((g.social_cost(&p) - p.social_cost(&m)).abs() < 1e-9);
        assert!((g.potential(&p) - game::rosenthal_potential(&m, &p)).abs() < 1e-9);
        assert!(g.is_nash(&p));
    }

    #[test]
    fn dynamics_converge_for_every_model() {
        for model in [
            CongestionModel::Linear,
            CongestionModel::Polynomial { degree: 2 },
            CongestionModel::Mm1 { capacity: 8 },
        ] {
            let m = market(8);
            let g = GeneralizedGame::new(&m, model);
            let mut p = Profile::all_remote(8);
            let moves = g.run_dynamics(&mut p, 10_000);
            assert!(moves.is_some(), "{model:?} did not converge");
            assert!(g.is_nash(&p), "{model:?} not at NE");
            assert!(p.is_feasible(&m));
        }
    }

    #[test]
    fn potential_decreases_with_each_improving_move() {
        let m = market(6);
        let g = GeneralizedGame::new(&m, CongestionModel::Polynomial { degree: 2 });
        let mut p = Profile::all_remote(6);
        let mut phi = g.potential(&p);
        for _ in 0..100 {
            let mut moved = false;
            for (l, _) in p.clone().iter() {
                let cur = g.provider_cost(&p, l);
                if let Some((np, cost)) = g.best_response(&p, l) {
                    if np != p.placement(l) && cost < cur - IMPROVEMENT_TOL {
                        p.set(l, np);
                        let nphi = g.potential(&p);
                        assert!(nphi < phi, "potential rose under polynomial model");
                        // Exact potential: ΔΦ equals the mover's Δcost.
                        assert!(((phi - nphi) - (cur - cost)).abs() < 1e-9);
                        phi = nphi;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn convex_models_spread_harder() {
        // Quadratic pricing penalizes pile-ups more than linear, so the
        // max congestion under quadratic is never larger.
        let m = market(10);
        let run = |model| {
            let g = GeneralizedGame::new(&m, model);
            let mut p = Profile::all_remote(10);
            g.run_dynamics(&mut p, 10_000).unwrap();
            *p.congestion(&m).iter().max().unwrap()
        };
        let lin = run(CongestionModel::Linear);
        let quad = run(CongestionModel::Polynomial { degree: 2 });
        assert!(quad <= lin, "quadratic {quad} > linear {lin}");
    }

    #[test]
    fn mm1_respects_capacity_wall() {
        let m = market(10);
        let g = GeneralizedGame::new(&m, CongestionModel::Mm1 { capacity: 3 });
        let mut p = Profile::all_remote(10);
        g.run_dynamics(&mut p, 10_000).unwrap();
        for s in p.congestion(&m) {
            assert!(s < 3, "M/M/1 wall breached: {s}");
        }
    }

    #[test]
    #[should_panic(expected = "congestion includes the provider")]
    fn zero_congestion_rejected() {
        CongestionModel::Linear.price(1.0, 0);
    }
}
