//! Incremental game state: the profile plus maintained congestion counts,
//! aggregate loads and residual capacities.
//!
//! Every hot path of the mechanism — best-response sweeps, LCF, the
//! social-cost local search, churn replanning — repeatedly asks the same
//! three questions about a profile: *how congested is cloudlet `i`*
//! (`|σ_i|`), *how much capacity is left there*, and *what does provider
//! `l` currently pay*. [`Profile`] answers each by scanning all `N`
//! providers and allocating fresh vectors; at `N` providers and `M`
//! cloudlets a single best-response sweep built that way costs
//! `O(N·(N+M))` time and `~3N` heap allocations.
//!
//! [`GameState`] answers all three in `O(1)` by carrying the aggregates
//! alongside the profile and updating them in [`GameState::apply_move`]:
//!
//! | operation            | `Profile` (recompute) | `GameState` |
//! |----------------------|-----------------------|-------------|
//! | congestion lookup    | `O(N)` + alloc        | `O(1)`      |
//! | residual lookup      | `O(N+M)` + alloc      | `O(1)`      |
//! | provider cost        | `O(N)`                | `O(1)`      |
//! | apply one move       | —                     | `O(1)`      |
//! | best response        | `O(N+M)` + 2 allocs   | `O(M)`, allocation-free |
//! | full sweep           | `O(N·(N+M))`          | `O(N·M)`    |
//!
//! The maintained invariant — checked by a `debug_assert!` after every
//! move and by randomized differential tests — is exact agreement with
//! recomputation from scratch:
//!
//! ```text
//! sigma[i] == |{l : σ(l) = CL_i}|                  (exactly)
//! loads[i] == Σ_{σ(l)=CL_i} (A_l, B_l)             (within 1e-9)
//! ```
//!
//! Congestion counts are integers, so every cost derived from them is
//! *bit-identical* to the recompute path; loads accumulate floating-point
//! increments and may drift by ULPs relative to a fresh summation, which
//! only matters at capacity boundaries already blurred by the `1e-9`
//! feasibility slack in [`Market::fits`].

use mec_topology::CloudletId;

use crate::game::IMPROVEMENT_TOL;
use crate::model::{Market, ProviderId};
use crate::strategy::{Placement, Profile};

/// A strategy profile together with incrementally-maintained congestion
/// counts, aggregate `(compute, bandwidth)` loads and residual capacities.
///
/// # Examples
///
/// ```
/// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
/// use mec_core::state::GameState;
/// use mec_core::{Placement, Profile, ProviderId};
/// use mec_topology::CloudletId;
///
/// let market = Market::builder()
///     .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
///     .provider(ProviderSpec::new(2.0, 10.0, 1.0, 8.0))
///     .provider(ProviderSpec::new(2.0, 10.0, 1.0, 8.0))
///     .uniform_update_cost(0.1)
///     .build();
/// let mut state = GameState::new(&market, Profile::all_remote(2));
/// let old = state.apply_move(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
/// assert_eq!(old, Placement::Remote);
/// assert_eq!(state.congestion(CloudletId(0)), 1);
/// assert_eq!(state.residual(CloudletId(0)), (8.0, 40.0));
/// ```
#[derive(Debug, Clone)]
pub struct GameState<'m> {
    market: &'m Market,
    profile: Profile,
    /// Congestion `|σ_i|` per cloudlet.
    sigma: Vec<usize>,
    /// Aggregate `(compute, bandwidth)` demand cached at each cloudlet.
    loads: Vec<(f64, f64)>,
}

impl<'m> GameState<'m> {
    /// Builds the state from a profile in `O(N + M)`.
    ///
    /// # Panics
    ///
    /// Panics if `profile` does not cover exactly the market's providers.
    pub fn new(market: &'m Market, profile: Profile) -> Self {
        assert_eq!(
            profile.len(),
            market.provider_count(),
            "profile/provider count mismatch"
        );
        let sigma = profile.congestion(market);
        let loads = profile.loads(market);
        GameState {
            market,
            profile,
            sigma,
            loads,
        }
    }

    /// All-remote starting state (the pre-caching status quo).
    pub fn all_remote(market: &'m Market) -> Self {
        GameState::new(market, Profile::all_remote(market.provider_count()))
    }

    /// The underlying market.
    #[inline]
    pub fn market(&self) -> &'m Market {
        self.market
    }

    /// Read-only view of the profile.
    #[inline]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consumes the state, returning the profile.
    pub fn into_profile(self) -> Profile {
        self.profile
    }

    /// Number of providers covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// `false`: markets always have at least one provider.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }

    /// Placement of provider `l` — `O(1)`.
    #[inline]
    pub fn placement(&self, l: ProviderId) -> Placement {
        self.profile.placement(l)
    }

    /// Congestion `|σ_i|` of cloudlet `i` — `O(1)`.
    #[inline]
    pub fn congestion(&self, i: CloudletId) -> usize {
        self.sigma[i.index()]
    }

    /// Maintained congestion counts, indexed by cloudlet.
    #[inline]
    pub fn congestion_counts(&self) -> &[usize] {
        &self.sigma
    }

    /// Aggregate `(compute, bandwidth)` load at cloudlet `i` — `O(1)`.
    #[inline]
    pub fn load(&self, i: CloudletId) -> (f64, f64) {
        self.loads[i.index()]
    }

    /// Residual `(compute, bandwidth)` capacity at cloudlet `i` — `O(1)`.
    /// Negative components mean the profile overloads the cloudlet.
    #[inline]
    pub fn residual(&self, i: CloudletId) -> (f64, f64) {
        let spec = self.market.cloudlet(i);
        let (a, b) = self.loads[i.index()];
        (spec.compute_capacity - a, spec.bandwidth_capacity - b)
    }

    /// `true` if every cloudlet's capacities hold — `O(M)`.
    pub fn is_feasible(&self) -> bool {
        self.market.cloudlets().all(|i| {
            let (a, b) = self.residual(i);
            a >= -1e-9 && b >= -1e-9
        })
    }

    /// Moves provider `l` to `placement`, updating every aggregate in
    /// `O(1)`, and returns the previous placement (pass it back to undo).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use mec_core::model::{CloudletSpec, Market, ProviderSpec};
    /// use mec_core::{GameState, Placement};
    ///
    /// let market = Market::builder()
    ///     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
    ///     .provider(ProviderSpec::new(2.0, 10.0, 1.0, 30.0))
    ///     .uniform_update_cost(0.3)
    ///     .build();
    /// let i = market.cloudlets().next().unwrap();
    /// let l = market.providers().next().unwrap();
    ///
    /// let mut state = GameState::all_remote(&market);
    /// let prev = state.apply_move(l, Placement::Cloudlet(i));
    /// assert_eq!(prev, Placement::Remote);
    /// assert_eq!(state.congestion(i), 1);
    ///
    /// state.apply_move(l, prev); // pass the old placement back to undo
    /// assert_eq!(state.congestion(i), 0);
    /// ```
    pub fn apply_move(&mut self, l: ProviderId, placement: Placement) -> Placement {
        let old = self.profile.placement(l);
        if old == placement {
            return old;
        }
        let spec = self.market.provider(l);
        if let Placement::Cloudlet(c) = old {
            let k = c.index();
            self.sigma[k] -= 1;
            self.loads[k].0 -= spec.compute_demand;
            self.loads[k].1 -= spec.bandwidth_demand;
        }
        if let Placement::Cloudlet(c) = placement {
            let k = c.index();
            self.sigma[k] += 1;
            self.loads[k].0 += spec.compute_demand;
            self.loads[k].1 += spec.bandwidth_demand;
        }
        self.profile.set(l, placement);
        debug_assert!(
            self.agrees_with_recompute(1e-9),
            "incremental state diverged from recompute after moving {l} to {placement}"
        );
        old
    }

    /// Cost provider `l` pays under the current profile — `O(1)`
    /// (Eq. (3)/(5), or the remote cost when not cached).
    pub fn provider_cost(&self, l: ProviderId) -> f64 {
        match self.profile.placement(l) {
            Placement::Remote => self.market.provider(l).remote_cost,
            Placement::Cloudlet(c) => self.market.caching_cost(l, c, self.sigma[c.index()]),
        }
    }

    /// Social cost — Eq. (6) — in `O(N)`.
    pub fn social_cost(&self) -> f64 {
        self.market.providers().map(|l| self.provider_cost(l)).sum()
    }

    /// Sum of provider costs over a subset in `O(|subset|)`.
    pub fn subset_cost<I: IntoIterator<Item = ProviderId>>(&self, subset: I) -> f64 {
        subset.into_iter().map(|l| self.provider_cost(l)).sum()
    }

    /// The best response of provider `l` against the rest of the profile,
    /// evaluated against the maintained aggregates: `O(M)` and
    /// allocation-free. Candidate set, costs and tie-breaking are identical
    /// to the recompute path [`crate::game::best_response`].
    ///
    /// Returns `None` when no candidate at all is available.
    pub fn best_response(&self, l: ProviderId) -> Option<(Placement, f64)> {
        let market = self.market;
        let current = self.profile.placement(l);
        let spec = market.provider(l);

        let mut best: Option<(Placement, f64)> = None;
        let mut consider = |p: Placement, cost: f64| {
            let better = match best {
                None => true,
                Some((bp, bc)) => {
                    cost < bc - IMPROVEMENT_TOL
                        || ((cost - bc).abs() <= IMPROVEMENT_TOL && p == current && bp != current)
                }
            };
            if better {
                best = Some((p, cost));
            }
        };

        if spec.can_stay_remote() {
            consider(Placement::Remote, spec.remote_cost);
        }
        for i in market.cloudlets() {
            // Candidates see the "others only" state: remove l from its own
            // cloudlet before checking fit and congestion.
            let (mut free_a, mut free_b) = self.residual(i);
            let mut others = self.sigma[i.index()];
            if current == Placement::Cloudlet(i) {
                free_a += spec.compute_demand;
                free_b += spec.bandwidth_demand;
                others -= 1;
            }
            if market.fits(l, (free_a, free_b)) {
                let cost = market.caching_cost(l, i, others + 1);
                consider(Placement::Cloudlet(i), cost);
            }
        }
        best
    }

    /// `true` if the maintained aggregates match a from-scratch
    /// recomputation: congestion exactly, loads within `tol` per component.
    /// This is the invariant the incremental path guarantees; it is
    /// `debug_assert!`ed after every [`GameState::apply_move`] and pounded
    /// by the randomized differential tests.
    pub fn agrees_with_recompute(&self, tol: f64) -> bool {
        let sigma = self.profile.congestion(self.market);
        if sigma != self.sigma {
            return false;
        }
        let loads = self.profile.loads(self.market);
        loads
            .iter()
            .zip(&self.loads)
            .all(|(a, b)| (a.0 - b.0).abs() <= tol && (a.1 - b.1).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::best_response;
    use crate::model::{CloudletSpec, ProviderSpec};

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(15.0, 80.0, 0.3, 0.2))
            .cloudlet(CloudletSpec::new(10.0, 60.0, 0.8, 0.1));
        for k in 0..n {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 3) as f64,
                4.0 + (k % 5) as f64,
                0.5 + 0.25 * (k % 4) as f64,
                12.0 + k as f64,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    #[test]
    fn new_matches_profile_aggregates() {
        let m = market(7);
        let mut p = Profile::all_remote(7);
        p.set(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
        p.set(ProviderId(3), Placement::Cloudlet(CloudletId(0)));
        p.set(ProviderId(5), Placement::Cloudlet(CloudletId(2)));
        let s = GameState::new(&m, p.clone());
        assert_eq!(s.congestion_counts(), p.congestion(&m).as_slice());
        for (i, want) in m.cloudlets().zip(p.residual(&m)) {
            let got = s.residual(i);
            assert!((got.0 - want.0).abs() < 1e-12 && (got.1 - want.1).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_move_updates_and_returns_old() {
        let m = market(4);
        let mut s = GameState::all_remote(&m);
        let old = s.apply_move(ProviderId(1), Placement::Cloudlet(CloudletId(1)));
        assert_eq!(old, Placement::Remote);
        assert_eq!(s.congestion(CloudletId(1)), 1);
        // Move again: cloudlet 1 -> cloudlet 0.
        let old = s.apply_move(ProviderId(1), Placement::Cloudlet(CloudletId(0)));
        assert_eq!(old, Placement::Cloudlet(CloudletId(1)));
        assert_eq!(s.congestion(CloudletId(1)), 0);
        assert_eq!(s.congestion(CloudletId(0)), 1);
        // Undo with the returned placement.
        s.apply_move(ProviderId(1), old);
        assert_eq!(s.congestion(CloudletId(1)), 1);
        assert!(s.agrees_with_recompute(1e-12));
    }

    #[test]
    fn apply_move_to_same_place_is_noop() {
        let m = market(3);
        let mut s = GameState::all_remote(&m);
        s.apply_move(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
        let before = s.congestion_counts().to_vec();
        let old = s.apply_move(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
        assert_eq!(old, Placement::Cloudlet(CloudletId(0)));
        assert_eq!(s.congestion_counts(), before.as_slice());
    }

    #[test]
    fn provider_and_social_costs_match_profile() {
        let m = market(6);
        let mut s = GameState::all_remote(&m);
        for k in 0..5 {
            s.apply_move(ProviderId(k), Placement::Cloudlet(CloudletId(k % 3)));
        }
        for l in m.providers() {
            assert_eq!(s.provider_cost(l), s.profile().provider_cost(&m, l));
        }
        assert!((s.social_cost() - s.profile().social_cost(&m)).abs() < 1e-12);
        let subset = [ProviderId(0), ProviderId(4), ProviderId(5)];
        assert!(
            (s.subset_cost(subset.iter().copied())
                - s.profile().subset_cost(&m, subset.iter().copied()))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn best_response_matches_recompute_path() {
        let m = market(8);
        let mut s = GameState::all_remote(&m);
        for k in 0..6 {
            s.apply_move(ProviderId(k), Placement::Cloudlet(CloudletId(k % 3)));
        }
        for l in m.providers() {
            assert_eq!(s.best_response(l), best_response(&m, s.profile(), l), "{l}");
        }
    }

    #[test]
    fn feasibility_matches_profile() {
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(2.0, 10.0, 0.1, 0.1))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, 3.0))
            .provider(ProviderSpec::new(2.0, 5.0, 1.0, 3.0))
            .uniform_update_cost(0.0)
            .build();
        let mut s = GameState::all_remote(&m);
        assert!(s.is_feasible());
        s.apply_move(ProviderId(0), Placement::Cloudlet(CloudletId(0)));
        assert!(s.is_feasible());
        s.apply_move(ProviderId(1), Placement::Cloudlet(CloudletId(0)));
        assert!(!s.is_feasible());
        assert_eq!(s.is_feasible(), s.profile().is_feasible(&m));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_wrong_profile_size() {
        let m = market(3);
        let _ = GameState::new(&m, Profile::all_remote(2));
    }
}
