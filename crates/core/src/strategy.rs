//! Strategy profiles: where each provider's service lives.

use mec_topology::CloudletId;

use crate::model::{Market, ProviderId};

/// One provider's strategy: cache at a cloudlet or stay in the remote cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Cache the service at this cloudlet.
    Cloudlet(CloudletId),
    /// Serve from the original instance in the remote data center.
    Remote,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Cloudlet(c) => write!(f, "{c}"),
            Placement::Remote => write!(f, "remote"),
        }
    }
}

/// A full strategy profile: a placement for every provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    placements: Vec<Placement>,
}

impl Profile {
    /// Creates a profile from raw placements.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty.
    pub fn new(placements: Vec<Placement>) -> Self {
        assert!(!placements.is_empty(), "profile must cover providers");
        Profile { placements }
    }

    /// All-remote profile for `n` providers (the pre-caching status quo).
    pub fn all_remote(n: usize) -> Self {
        Profile::new(vec![Placement::Remote; n])
    }

    /// Number of providers covered.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// `false`: profiles always cover at least one provider.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Placement of provider `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn placement(&self, l: ProviderId) -> Placement {
        self.placements[l.index()]
    }

    /// Sets the placement of provider `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn set(&mut self, l: ProviderId, p: Placement) {
        self.placements[l.index()] = p;
    }

    /// Iterates over `(provider, placement)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProviderId, Placement)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, &p)| (ProviderId(i), p))
    }

    /// Congestion `|σ_i|` per cloudlet: how many providers cache at each.
    pub fn congestion(&self, market: &Market) -> Vec<usize> {
        let mut sigma = vec![0usize; market.cloudlet_count()];
        for &p in &self.placements {
            if let Placement::Cloudlet(c) = p {
                sigma[c.index()] += 1;
            }
        }
        sigma
    }

    /// Aggregate `(compute, bandwidth)` load per cloudlet.
    pub fn loads(&self, market: &Market) -> Vec<(f64, f64)> {
        let mut loads = vec![(0.0, 0.0); market.cloudlet_count()];
        for (l, p) in self.iter() {
            if let Placement::Cloudlet(c) = p {
                let spec = market.provider(l);
                loads[c.index()].0 += spec.compute_demand;
                loads[c.index()].1 += spec.bandwidth_demand;
            }
        }
        loads
    }

    /// Residual `(compute, bandwidth)` capacity per cloudlet (may be
    /// negative if the profile overloads a cloudlet).
    pub fn residual(&self, market: &Market) -> Vec<(f64, f64)> {
        self.loads(market)
            .into_iter()
            .zip(market.cloudlets())
            .map(|((a, b), i)| {
                let c = market.cloudlet(i);
                (c.compute_capacity - a, c.bandwidth_capacity - b)
            })
            .collect()
    }

    /// `true` if every cloudlet's compute and bandwidth capacity holds.
    pub fn is_feasible(&self, market: &Market) -> bool {
        self.residual(market)
            .iter()
            .all(|&(a, b)| a >= -1e-9 && b >= -1e-9)
    }

    /// Cost of provider `l` under this profile — Eq. (3)/(5), or the remote
    /// cost when `l` is not cached.
    pub fn provider_cost(&self, market: &Market, l: ProviderId) -> f64 {
        match self.placement(l) {
            Placement::Remote => market.provider(l).remote_cost,
            Placement::Cloudlet(c) => {
                let sigma = self
                    .placements
                    .iter()
                    .filter(|p| matches!(p, Placement::Cloudlet(x) if *x == c))
                    .count();
                market.caching_cost(l, c, sigma)
            }
        }
    }

    /// Social cost — Eq. (6): sum of all provider costs.
    pub fn social_cost(&self, market: &Market) -> f64 {
        let sigma = self.congestion(market);
        self.iter()
            .map(|(l, p)| match p {
                Placement::Remote => market.provider(l).remote_cost,
                Placement::Cloudlet(c) => market.caching_cost(l, c, sigma[c.index()]),
            })
            .sum()
    }

    /// Sum of provider costs over a subset (used for the coordinated /
    /// selfish split of Figures 2–3).
    pub fn subset_cost<I: IntoIterator<Item = ProviderId>>(
        &self,
        market: &Market,
        subset: I,
    ) -> f64 {
        let sigma = self.congestion(market);
        subset
            .into_iter()
            .map(|l| match self.placement(l) {
                Placement::Remote => market.provider(l).remote_cost,
                Placement::Cloudlet(c) => market.caching_cost(l, c, sigma[c.index()]),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_num::assert_approx_eq;

    fn market() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(8.0, 40.0, 0.2, 0.3))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 10.0))
            .provider(ProviderSpec::new(3.0, 12.0, 1.5, 12.0))
            .provider(ProviderSpec::new(1.0, 8.0, 0.5, 6.0))
            .uniform_update_cost(0.4)
            .build()
    }

    #[test]
    fn congestion_counts() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Remote,
        ]);
        assert_eq!(p.congestion(&m), vec![2, 0]);
    }

    #[test]
    fn loads_and_feasibility() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(1)),
        ]);
        let loads = p.loads(&m);
        assert_eq!(loads[0], (5.0, 22.0));
        assert_eq!(loads[1], (1.0, 8.0));
        assert!(p.is_feasible(&m));
    }

    #[test]
    fn infeasible_when_overloaded() {
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(2.0, 100.0, 0.1, 0.1))
            .provider(ProviderSpec::new(2.0, 1.0, 1.0, 5.0))
            .provider(ProviderSpec::new(2.0, 1.0, 1.0, 5.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
        ]);
        assert!(!p.is_feasible(&m));
    }

    #[test]
    fn provider_cost_includes_congestion() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Remote,
        ]);
        // sigma=2 at CL0: cost(p0) = 1.0*2 + 1.0 + 0.4 = 3.4
        assert!((p.provider_cost(&m, ProviderId(0)) - 3.4).abs() < 1e-12);
        // remote provider pays its remote cost
        assert_approx_eq!(p.provider_cost(&m, ProviderId(2)), 6.0, 0.0);
    }

    #[test]
    fn social_cost_sums_provider_costs() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(1)),
            Placement::Remote,
        ]);
        let direct: f64 = m.providers().map(|l| p.provider_cost(&m, l)).sum();
        assert!((p.social_cost(&m) - direct).abs() < 1e-9);
    }

    #[test]
    fn subset_cost_partitions_social_cost() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(1)),
        ]);
        let a = p.subset_cost(&m, [ProviderId(0), ProviderId(1)]);
        let b = p.subset_cost(&m, [ProviderId(2)]);
        assert!((a + b - p.social_cost(&m)).abs() < 1e-9);
    }

    #[test]
    fn all_remote_profile() {
        let m = market();
        let p = Profile::all_remote(3);
        assert!(p.is_feasible(&m));
        assert_approx_eq!(p.social_cost(&m), 10.0 + 12.0 + 6.0, 0.0);
    }

    #[test]
    fn set_and_get() {
        let mut p = Profile::all_remote(2);
        p.set(ProviderId(1), Placement::Cloudlet(CloudletId(0)));
        assert_eq!(
            p.placement(ProviderId(1)),
            Placement::Cloudlet(CloudletId(0))
        );
        assert_eq!(p.placement(ProviderId(0)), Placement::Remote);
    }

    #[test]
    fn display() {
        assert_eq!(Placement::Remote.to_string(), "remote");
        assert_eq!(Placement::Cloudlet(CloudletId(2)).to_string(), "CL2");
    }
}
