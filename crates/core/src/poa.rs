//! Price of Anarchy: the theoretical bound of Theorem 1 and an empirical
//! estimator for small markets.
//!
//! Theorem 1: the PoA of the approximation-restricted Stackelberg strategy
//! is at most `2δκ/(1−v) · (1/(4v) + 1 − ξ)` for any `v ∈ (0, 1)`, where
//! `δ = C(CL_i)/a_max` and `κ = B(CL_i)/b_max`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::CoreError;
use crate::game::{BestResponseDynamics, MoveOrder};
use crate::model::Market;
use crate::opt::social_optimum;
use crate::strategy::{Placement, Profile};
use mec_topology::CloudletId;

/// Theorem 1's PoA bound at a specific `v ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `v` is outside `(0, 1)` or `xi` outside `[0, 1]`.
pub fn poa_bound(delta: f64, kappa: f64, xi: f64, v: f64) -> f64 {
    assert!(v > 0.0 && v < 1.0, "v must be in (0, 1), got {v}");
    assert!((0.0..=1.0).contains(&xi), "xi must be in [0, 1], got {xi}");
    2.0 * delta * kappa / (1.0 - v) * (1.0 / (4.0 * v) + 1.0 - xi)
}

/// Theorem 1's bound minimized over a fine grid of `v`.
pub fn best_poa_bound(delta: f64, kappa: f64, xi: f64) -> f64 {
    (1..100)
        .map(|k| poa_bound(delta, kappa, xi, k as f64 / 100.0))
        .fold(f64::INFINITY, f64::min)
}

/// Theorem 1's bound evaluated directly from a market's `δ` and `κ`.
pub fn market_poa_bound(market: &Market, xi: f64) -> f64 {
    best_poa_bound(market.delta(), market.kappa(), xi)
}

/// Empirical PoA measurement on a small market.
#[derive(Debug, Clone)]
pub struct PoaEstimate {
    /// Social cost of the worst Nash equilibrium found.
    pub worst_nash_cost: f64,
    /// Social cost of the best Nash equilibrium found.
    pub best_nash_cost: f64,
    /// Exact optimal social cost.
    pub optimum_cost: f64,
    /// `worst_nash_cost / optimum_cost`.
    pub poa: f64,
    /// `best_nash_cost / optimum_cost` (Price of Stability).
    pub pos: f64,
    /// Number of distinct equilibria encountered.
    pub equilibria_found: usize,
}

/// Estimates the empirical PoA by running best-response dynamics from
/// `starts` random initial profiles and comparing the worst equilibrium
/// against the exact optimum.
///
/// # Errors
///
/// Propagates [`CoreError::Infeasible`] from the exact optimum.
///
/// # Panics
///
/// Panics if the market exceeds [`crate::opt::MAX_PROVIDERS`] providers.
pub fn estimate_poa(market: &Market, starts: usize, seed: u64) -> Result<PoaEstimate, CoreError> {
    let opt = social_optimum(market)?;
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let dynamics = BestResponseDynamics::new(MoveOrder::RoundRobin);
    let movable = vec![true; n];

    let mut worst = f64::NEG_INFINITY;
    let mut best = f64::INFINITY;
    let mut seen: Vec<Profile> = Vec::new();

    for _ in 0..starts.max(1) {
        // Random feasible start: try random placements, fall back to remote.
        let mut profile = Profile::all_remote(n);
        for l in market.providers() {
            let choice = rng.random_range(0..=m);
            if choice < m {
                let cand = Placement::Cloudlet(CloudletId(choice));
                let mut trial = profile.clone();
                trial.set(l, cand);
                if trial.is_feasible(market) {
                    profile = trial;
                }
            }
        }
        let res = dynamics.run(market, &mut profile, &movable);
        if !res.converged {
            continue;
        }
        let cost = profile.social_cost(market);
        worst = worst.max(cost);
        best = best.min(cost);
        if !seen.contains(&profile) {
            seen.push(profile);
        }
    }

    if !worst.is_finite() {
        return Err(CoreError::Infeasible);
    }
    Ok(PoaEstimate {
        worst_nash_cost: worst,
        best_nash_cost: best,
        optimum_cost: opt.social_cost,
        poa: worst / opt.social_cost,
        pos: best / opt.social_cost,
        equilibria_found: seen.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};

    fn tiny() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(20.0, 80.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(20.0, 80.0, 0.4, 0.4))
            .provider(ProviderSpec::new(2.0, 8.0, 1.0, 15.0))
            .provider(ProviderSpec::new(2.0, 8.0, 1.0, 15.0))
            .provider(ProviderSpec::new(3.0, 9.0, 1.2, 15.0))
            .provider(ProviderSpec::new(1.0, 7.0, 0.8, 15.0))
            .uniform_update_cost(0.2)
            .build()
    }

    #[test]
    fn bound_decreases_with_xi() {
        let b0 = best_poa_bound(2.0, 2.0, 0.0);
        let b5 = best_poa_bound(2.0, 2.0, 0.5);
        let b9 = best_poa_bound(2.0, 2.0, 0.9);
        assert!(b0 > b5 && b5 > b9, "{b0} {b5} {b9}");
    }

    #[test]
    fn bound_scales_with_delta_kappa() {
        assert!(best_poa_bound(4.0, 2.0, 0.3) > best_poa_bound(2.0, 2.0, 0.3));
        assert!(best_poa_bound(2.0, 4.0, 0.3) > best_poa_bound(2.0, 2.0, 0.3));
    }

    #[test]
    fn grid_minimum_at_interior_v() {
        // The bound blows up at v -> 0 and v -> 1; the grid minimum must be
        // strictly below both near-boundary evaluations.
        let b = best_poa_bound(2.0, 2.0, 0.3);
        assert!(b < poa_bound(2.0, 2.0, 0.3, 0.01));
        assert!(b < poa_bound(2.0, 2.0, 0.3, 0.99));
    }

    #[test]
    #[should_panic(expected = "v must be in (0, 1)")]
    fn rejects_bad_v() {
        let _ = poa_bound(1.0, 1.0, 0.5, 1.0);
    }

    #[test]
    fn empirical_poa_at_least_one() {
        let m = tiny();
        let est = estimate_poa(&m, 20, 7).unwrap();
        assert!(est.poa >= 1.0 - 1e-9, "PoA {}", est.poa);
        assert!(est.pos >= 1.0 - 1e-9);
        assert!(est.pos <= est.poa + 1e-9);
        assert!(est.equilibria_found >= 1);
    }

    #[test]
    fn empirical_poa_below_theorem_bound() {
        let m = tiny();
        let est = estimate_poa(&m, 20, 11).unwrap();
        // ξ = 0 here (everyone selfish): the Stackelberg bound with ξ = 0
        // must still dominate the measured anarchy.
        let bound = market_poa_bound(&m, 0.0);
        assert!(
            est.poa <= bound + 1e-9,
            "measured {} exceeds bound {}",
            est.poa,
            bound
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = tiny();
        let a = estimate_poa(&m, 10, 3).unwrap();
        let b = estimate_poa(&m, 10, 3).unwrap();
        assert_eq!(a.worst_nash_cost, b.worst_nash_cost);
        assert_eq!(a.equilibria_found, b.equilibria_found);
    }
}
