//! Outcome diagnostics: where does the social cost come from?
//!
//! The figures report a single social-cost number; understanding *why* an
//! algorithm wins needs the decomposition — congestion charges vs fixed
//! instantiation/update charges vs remote serving — plus how evenly the
//! load spreads across cloudlets. The examples and EXPERIMENTS.md use this
//! module to explain results rather than just report them.

use crate::model::Market;
use crate::strategy::{Placement, Profile};

/// Additive decomposition of the social cost (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostBreakdown {
    /// Total congestion charges `Σ_i (α_i+β_i)·σ_i²`.
    pub congestion: f64,
    /// Total instantiation + processing charges of cached services.
    pub instantiation: f64,
    /// Total bandwidth/update charges of cached services.
    pub update: f64,
    /// Total remote-serving charges.
    pub remote: f64,
}

impl CostBreakdown {
    /// The full social cost (sums the components).
    pub fn total(&self) -> f64 {
        self.congestion + self.instantiation + self.update + self.remote
    }
}

/// Decomposes the social cost of `profile`.
pub fn cost_breakdown(market: &Market, profile: &Profile) -> CostBreakdown {
    let sigma = profile.congestion(market);
    let mut b = CostBreakdown {
        congestion: 0.0,
        instantiation: 0.0,
        update: 0.0,
        remote: 0.0,
    };
    for (l, p) in profile.iter() {
        match p {
            Placement::Remote => b.remote += market.provider(l).remote_cost,
            Placement::Cloudlet(i) => {
                b.congestion += market.cloudlet(i).congestion_price() * sigma[i.index()] as f64;
                b.instantiation += market.provider(l).instantiation_cost;
                b.update += market.update_cost(l, i);
            }
        }
    }
    b
}

/// Load-balance diagnostics of a placement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadBalance {
    /// Cloudlets hosting at least one cached service.
    pub used_cloudlets: usize,
    /// Largest congestion level `max_i σ_i`.
    pub max_congestion: usize,
    /// Mean congestion over *used* cloudlets.
    pub mean_congestion: f64,
    /// Jain's fairness index of the congestion vector
    /// (`1` = perfectly even, `1/n` = everything on one cloudlet).
    pub jain_index: f64,
    /// Fraction of providers cached (vs serving remotely).
    pub cached_fraction: f64,
}

/// Computes [`LoadBalance`] for `profile`.
///
/// Jain's index is computed over all cloudlets (empty ones included), so a
/// profile that piles everything onto one of many cloudlets scores near
/// `1/m`.
pub fn load_balance(market: &Market, profile: &Profile) -> LoadBalance {
    let sigma = profile.congestion(market);
    let used = sigma.iter().filter(|s| **s > 0).count();
    let max = sigma.iter().copied().max().unwrap_or(0);
    let cached: usize = sigma.iter().sum();
    let sum: f64 = sigma.iter().map(|&s| s as f64).sum();
    let sumsq: f64 = sigma.iter().map(|&s| (s as f64) * (s as f64)).sum();
    let jain = if sumsq > 0.0 {
        sum * sum / (sigma.len() as f64 * sumsq)
    } else {
        1.0
    };
    LoadBalance {
        used_cloudlets: used,
        max_congestion: max,
        mean_congestion: if used > 0 { sum / used as f64 } else { 0.0 },
        jain_index: jain,
        cached_fraction: cached as f64 / profile.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_num::assert_approx_eq;
    use mec_topology::CloudletId;

    fn market() -> Market {
        Market::builder()
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(20.0, 100.0, 0.3, 0.3))
            .provider(ProviderSpec::new(2.0, 10.0, 1.0, 7.0))
            .provider(ProviderSpec::new(2.0, 10.0, 1.5, 8.0))
            .provider(ProviderSpec::new(2.0, 10.0, 2.0, 9.0))
            .uniform_update_cost(0.4)
            .build()
    }

    #[test]
    fn breakdown_sums_to_social_cost() {
        let m = market();
        for placements in [
            vec![
                Placement::Cloudlet(CloudletId(0)),
                Placement::Cloudlet(CloudletId(0)),
                Placement::Remote,
            ],
            vec![
                Placement::Cloudlet(CloudletId(0)),
                Placement::Cloudlet(CloudletId(1)),
                Placement::Cloudlet(CloudletId(1)),
            ],
            vec![Placement::Remote; 3],
        ] {
            let p = Profile::new(placements);
            let b = cost_breakdown(&m, &p);
            assert!(
                (b.total() - p.social_cost(&m)).abs() < 1e-9,
                "breakdown {b:?} != social {}",
                p.social_cost(&m)
            );
        }
    }

    #[test]
    fn remote_only_has_remote_component() {
        let m = market();
        let p = Profile::all_remote(3);
        let b = cost_breakdown(&m, &p);
        assert_approx_eq!(b.congestion, 0.0, 1e-12);
        assert_approx_eq!(b.instantiation, 0.0, 1e-12);
        assert_approx_eq!(b.update, 0.0, 1e-12);
        assert!((b.remote - 24.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_component_is_quadratic() {
        let m = market();
        let p = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
        ]);
        let b = cost_breakdown(&m, &p);
        // price 1.0, sigma 3 => each pays 3, total 9 = sigma^2 * price.
        assert!((b.congestion - 9.0).abs() < 1e-9);
    }

    #[test]
    fn jain_index_extremes() {
        let m = market();
        let piled = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(0)),
        ]);
        let lb = load_balance(&m, &piled);
        assert!((lb.jain_index - 0.5).abs() < 1e-9); // 1/m with m=2
        assert_eq!(lb.max_congestion, 3);
        assert_eq!(lb.used_cloudlets, 1);
        assert!((lb.cached_fraction - 1.0).abs() < 1e-12);

        let spread = Profile::new(vec![
            Placement::Cloudlet(CloudletId(0)),
            Placement::Cloudlet(CloudletId(1)),
            Placement::Remote,
        ]);
        let lb2 = load_balance(&m, &spread);
        assert!((lb2.jain_index - 1.0).abs() < 1e-9);
        assert!((lb2.cached_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_remote_balance() {
        let m = market();
        let lb = load_balance(&m, &Profile::all_remote(3));
        assert_eq!(lb.used_cloudlets, 0);
        assert_eq!(lb.max_congestion, 0);
        assert_approx_eq!(lb.cached_fraction, 0.0, 1e-12);
        assert_approx_eq!(lb.jain_index, 1.0, 1e-12);
    }
}
