//! Market churn: temporary caching under provider arrivals and departures.
//!
//! Service caching is *temporary* by definition — "services are only cached
//! for temporary and their original services are still kept in remote data
//! centers for later use when the cached service is destroyed" (Section
//! II-B). This module simulates a market where providers activate and
//! deactivate over time and the mechanism replans, measuring both cost and
//! *stability*: how many cached instances must be instantiated, evicted or
//! relocated per event. Two replanning strategies are compared:
//!
//! * [`ReplanStrategy::FullLcf`] — rerun the whole LCF mechanism on the
//!   active sub-market at every step (best cost, most churn);
//! * [`ReplanStrategy::Incremental`] — newly arrived providers best-respond
//!   into the existing configuration; everyone then settles to a Nash
//!   equilibrium (less churn, equilibrium-quality cost).

use crate::error::CacheError;
use crate::game::{BestResponseDynamics, MoveOrder};
use crate::lcf::{lcf, LcfConfig};
use crate::model::{Market, ProviderId};
use crate::state::GameState;
use crate::strategy::{Placement, Profile};

/// How the mechanism reacts to churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanStrategy {
    /// Re-run the full LCF mechanism on the active sub-market.
    FullLcf,
    /// Keep the current placements; only let the (re)active providers
    /// best-respond to a new equilibrium.
    Incremental,
}

/// One churn event: providers that appear and providers that leave.
#[derive(Debug, Clone, Default)]
pub struct ChurnEvent {
    /// Providers that become active (cache requests arrive).
    pub arrivals: Vec<ProviderId>,
    /// Providers that become inactive (cached instance destroyed, traffic
    /// returns to the original remote instance).
    pub departures: Vec<ProviderId>,
}

/// Measured outcome of one replanning step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Social cost over the active providers after replanning.
    pub social_cost: f64,
    /// Active providers currently cached in some cloudlet.
    pub cached: usize,
    /// Persisting providers whose placement changed (service migrations).
    pub relocations: usize,
    /// New cached instances spun up this step.
    pub instantiations: usize,
    /// Cached instances destroyed this step.
    pub evictions: usize,
}

/// Stateful churn simulation over a fixed provider universe.
///
/// Placements live in an incremental [`GameState`], so churn application,
/// replanning and per-step cost reporting all run against maintained
/// congestion/load aggregates instead of rescanning the profile.
#[derive(Debug, Clone)]
pub struct ChurnSimulation<'a> {
    market: &'a Market,
    config: LcfConfig,
    strategy: ReplanStrategy,
    active: Vec<bool>,
    state: GameState<'a>,
}

impl<'a> ChurnSimulation<'a> {
    /// Creates a simulation with no active providers.
    pub fn new(market: &'a Market, strategy: ReplanStrategy, config: LcfConfig) -> Self {
        let n = market.provider_count();
        ChurnSimulation {
            market,
            config,
            strategy,
            active: vec![false; n],
            state: GameState::all_remote(market),
        }
    }

    /// Currently active providers.
    pub fn active_providers(&self) -> Vec<ProviderId> {
        self.market
            .providers()
            .filter(|l| self.active[l.index()])
            .collect()
    }

    /// Current placements (inactive providers are always `Remote`).
    pub fn profile(&self) -> &Profile {
        self.state.profile()
    }

    /// Social cost of the active providers under the current placements.
    pub fn social_cost(&self) -> f64 {
        self.state.subset_cost(self.active_providers())
    }

    /// Applies one churn event and replans.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotActive`] if a departure names an inactive
    /// provider and [`CacheError::AlreadyActive`] if an arrival names an
    /// active one (departures are processed first, so a provider may depart
    /// and re-arrive within one event). The event is validated before any
    /// state changes, so on error the simulation is untouched. A full-LCF
    /// replan propagates the mechanism's own [`CacheError`].
    pub fn step(&mut self, event: &ChurnEvent) -> Result<StepReport, CacheError> {
        // Dry-run the activation flips on a scratch copy so an invalid event
        // (including duplicates within one list) leaves `self` unchanged.
        let mut planned = self.active.clone();
        for &l in &event.departures {
            if !planned[l.index()] {
                return Err(CacheError::NotActive { provider: l });
            }
            planned[l.index()] = false;
        }
        for &l in &event.arrivals {
            if planned[l.index()] {
                return Err(CacheError::AlreadyActive { provider: l });
            }
            planned[l.index()] = true;
        }

        let before = self.state.profile().clone();

        for &l in &event.departures {
            self.active[l.index()] = false;
            self.state.apply_move(l, Placement::Remote);
        }
        for &l in &event.arrivals {
            self.active[l.index()] = true;
            self.state.apply_move(l, Placement::Remote);
        }

        let active = self.active_providers();
        if active.is_empty() {
            return Ok(StepReport {
                social_cost: 0.0,
                cached: 0,
                relocations: 0,
                instantiations: 0,
                evictions: event.departures.len(),
            });
        }

        match self.strategy {
            ReplanStrategy::FullLcf => {
                let sub = self.market.restrict(&active);
                let out = lcf(&sub, &self.config)?;
                for (k, &l) in active.iter().enumerate() {
                    self.state
                        .apply_move(l, out.profile.placement(ProviderId(k)));
                }
            }
            ReplanStrategy::Incremental => {
                let mut movable = vec![false; self.market.provider_count()];
                for &l in &active {
                    movable[l.index()] = true;
                }
                BestResponseDynamics::new(MoveOrder::RoundRobin)
                    .run_state(&mut self.state, &movable);
            }
        }

        // Churn accounting relative to the pre-event placements.
        let mut relocations = 0;
        let mut instantiations = 0;
        let mut evictions = 0;
        for l in self.market.providers() {
            let old = before.placement(l);
            let new = self.state.placement(l);
            let was_active_cached = matches!(old, Placement::Cloudlet(_));
            let is_active_cached = self.active[l.index()] && matches!(new, Placement::Cloudlet(_));
            match (was_active_cached, is_active_cached) {
                (false, true) => instantiations += 1,
                (true, false) => evictions += 1,
                (true, true) if old != new => {
                    relocations += 1;
                    // A migration destroys one instance and spins up another.
                    instantiations += 1;
                    evictions += 1;
                }
                _ => {}
            }
        }

        Ok(StepReport {
            social_cost: self.social_cost(),
            cached: active
                .iter()
                .filter(|l| matches!(self.state.placement(**l), Placement::Cloudlet(_)))
                .count(),
            relocations,
            instantiations,
            evictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CloudletSpec, ProviderSpec};
    use mec_num::assert_approx_eq;

    fn market(n: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(30.0, 150.0, 0.3, 0.3));
        for k in 0..n {
            b = b.provider(ProviderSpec::new(
                1.0 + (k % 3) as f64,
                5.0 + (k % 4) as f64,
                0.8,
                20.0,
            ));
        }
        b.uniform_update_cost(0.2).build()
    }

    fn ids(range: std::ops::Range<usize>) -> Vec<ProviderId> {
        range.map(ProviderId).collect()
    }

    #[test]
    fn arrivals_get_cached() {
        let m = market(10);
        for strategy in [ReplanStrategy::FullLcf, ReplanStrategy::Incremental] {
            let mut sim = ChurnSimulation::new(&m, strategy, LcfConfig::new(0.7));
            let rep = sim
                .step(&ChurnEvent {
                    arrivals: ids(0..6),
                    departures: vec![],
                })
                .unwrap();
            assert!(rep.cached > 0, "{strategy:?}");
            assert_eq!(rep.instantiations, rep.cached);
            assert_eq!(rep.evictions, 0);
            assert!(rep.social_cost > 0.0);
        }
    }

    #[test]
    fn departures_release_capacity() {
        let m = market(10);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.7));
        sim.step(&ChurnEvent {
            arrivals: ids(0..8),
            departures: vec![],
        })
        .unwrap();
        let rep = sim
            .step(&ChurnEvent {
                arrivals: vec![],
                departures: ids(0..4),
            })
            .unwrap();
        assert_eq!(sim.active_providers().len(), 4);
        for l in ids(0..4) {
            assert_eq!(sim.profile().placement(l), Placement::Remote);
        }
        assert!(rep.evictions >= 4);
    }

    #[test]
    fn incremental_churns_less_than_full() {
        let m = market(12);
        let script = [
            ChurnEvent {
                arrivals: ids(0..8),
                departures: vec![],
            },
            ChurnEvent {
                arrivals: ids(8..10),
                departures: ids(0..2),
            },
            ChurnEvent {
                arrivals: ids(10..12),
                departures: ids(2..4),
            },
            ChurnEvent {
                arrivals: ids(0..2),
                departures: ids(8..10),
            },
        ];
        let run = |strategy| {
            let mut sim = ChurnSimulation::new(&m, strategy, LcfConfig::new(0.7));
            let mut relocations = 0;
            for e in &script {
                relocations += sim.step(e).unwrap().relocations;
            }
            relocations
        };
        let full = run(ReplanStrategy::FullLcf);
        let inc = run(ReplanStrategy::Incremental);
        assert!(
            inc <= full,
            "incremental relocated more ({inc}) than full replan ({full})"
        );
    }

    #[test]
    fn social_cost_tracks_active_set() {
        let m = market(10);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.7));
        let r1 = sim
            .step(&ChurnEvent {
                arrivals: ids(0..4),
                departures: vec![],
            })
            .unwrap();
        let r2 = sim
            .step(&ChurnEvent {
                arrivals: ids(4..10),
                departures: vec![],
            })
            .unwrap();
        assert!(r2.social_cost > r1.social_cost);
        let r3 = sim
            .step(&ChurnEvent {
                arrivals: vec![],
                departures: ids(0..9),
            })
            .unwrap();
        assert!(r3.social_cost < r2.social_cost);
    }

    #[test]
    fn empty_market_costs_nothing() {
        let m = market(4);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.5));
        sim.step(&ChurnEvent {
            arrivals: ids(0..4),
            departures: vec![],
        })
        .unwrap();
        let rep = sim
            .step(&ChurnEvent {
                arrivals: vec![],
                departures: ids(0..4),
            })
            .unwrap();
        assert_approx_eq!(rep.social_cost, 0.0, 1e-12);
        assert_eq!(rep.cached, 0);
    }

    #[test]
    fn double_arrival_is_a_typed_error() {
        let m = market(4);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.5));
        sim.step(&ChurnEvent {
            arrivals: ids(0..2),
            departures: vec![],
        })
        .unwrap();
        let before = sim.profile().clone();
        let err = sim
            .step(&ChurnEvent {
                arrivals: ids(0..1),
                departures: vec![],
            })
            .unwrap_err();
        assert_eq!(
            err,
            CacheError::AlreadyActive {
                provider: ProviderId(0)
            }
        );
        // A rejected event must not disturb the simulation.
        assert_eq!(sim.profile(), &before);
        assert_eq!(sim.active_providers().len(), 2);
    }

    #[test]
    fn inactive_departure_is_a_typed_error() {
        let m = market(4);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.5));
        let err = sim
            .step(&ChurnEvent {
                arrivals: vec![],
                departures: ids(3..4),
            })
            .unwrap_err();
        assert_eq!(
            err,
            CacheError::NotActive {
                provider: ProviderId(3)
            }
        );
    }

    #[test]
    fn depart_and_rearrive_in_one_event() {
        let m = market(4);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.5));
        sim.step(&ChurnEvent {
            arrivals: ids(0..2),
            departures: vec![],
        })
        .unwrap();
        // Departures apply before arrivals, so this is legal.
        sim.step(&ChurnEvent {
            arrivals: ids(0..1),
            departures: ids(0..1),
        })
        .unwrap();
        assert_eq!(sim.active_providers().len(), 2);
    }

    #[test]
    fn restrict_preserves_costs() {
        let m = market(6);
        let keep = ids(2..5);
        let sub = m.restrict(&keep);
        assert_eq!(sub.provider_count(), 3);
        assert_eq!(sub.cloudlet_count(), m.cloudlet_count());
        for (k, &l) in keep.iter().enumerate() {
            for i in m.cloudlets() {
                assert_eq!(sub.update_cost(ProviderId(k), i), m.update_cost(l, i));
                assert_eq!(sub.flat_cost(ProviderId(k), i), m.flat_cost(l, i));
            }
        }
    }
}
