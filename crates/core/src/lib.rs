//! Stable service caching in mobile edge-clouds of a service market —
//! the paper's primary contribution.
//!
//! This crate implements the market model and both halves of the
//! approximation-restricted Stackelberg framework:
//!
//! * [`model`] — cloudlets, providers, and the congestion cost model
//!   (Eq. 1–3);
//! * [`strategy`] — placements, profiles, social cost (Eq. 5–6);
//! * [`game`] — the affine congestion game, Rosenthal potential, and
//!   best-response dynamics (Lemma 3);
//! * [`state`] — incremental game state: `O(1)` move application with
//!   maintained congestion, loads, and residuals (what the dynamics and
//!   every other hot path run on);
//! * [`appro`](mod@appro) — Algorithm 1, the GAP-based approximation for non-selfish
//!   players with its `2δκ` ratio (Lemma 2);
//! * [`lcf`](mod@lcf) — Algorithm 2, the Largest-Cost-First Stackelberg strategy;
//! * [`poa`] — Theorem 1's Price-of-Anarchy bound and an empirical
//!   estimator;
//! * [`opt`] — exact social optimum for small markets (validation).
//!
//! Extensions beyond the paper's minimum (see DESIGN.md):
//! [`congestion`] (non-linear cost models), [`weighted`] (load-weighted
//! game), [`dynamics`] (market churn), [`incentives`] (bulk-lease
//! viability), [`local_search`] (social-cost polish), and [`analysis`]
//! (cost breakdown / load balance).
//!
//! # Examples
//!
//! ```
//! use mec_core::lcf::{lcf, LcfConfig};
//! use mec_core::model::{CloudletSpec, Market, ProviderSpec};
//!
//! let mut builder = Market::builder()
//!     .cloudlet(CloudletSpec::new(20.0, 100.0, 0.5, 0.5))
//!     .cloudlet(CloudletSpec::new(25.0, 120.0, 0.3, 0.4));
//! for _ in 0..10 {
//!     builder = builder.provider(ProviderSpec::new(2.0, 10.0, 1.0, 30.0));
//! }
//! let market = builder.uniform_update_cost(0.3).build();
//!
//! // Coordinate 70 % of the providers, let the rest play selfishly.
//! let outcome = lcf(&market, &LcfConfig::new(0.7))?;
//! assert!(outcome.convergence.converged);
//! assert!(outcome.profile.is_feasible(&market));
//! # Ok::<(), mec_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod appro;
pub mod congestion;
pub mod dynamics;
pub mod error;
pub mod game;
pub mod incentives;
pub mod lcf;
pub mod local_search;
pub mod model;
pub mod opt;
pub mod poa;
pub mod snapshot;
pub mod state;
pub mod strategy;
pub mod verify;
pub mod weighted;

pub use analysis::{cost_breakdown, load_balance, CostBreakdown, LoadBalance};
pub use appro::{
    appro, approximation_ratio_bound, cloudlet_capacity_values, ApproConfig, ApproSolution,
    SlotPricing, SplitMode,
};
pub use congestion::{CongestionModel, GeneralizedGame};
pub use dynamics::{ChurnEvent, ChurnSimulation, ReplanStrategy, StepReport};
pub use error::{CacheError, CoreError};
pub use game::{
    best_response, is_nash, is_nash_state, BestResponseDynamics, Convergence, MoveOrder,
};
pub use incentives::{incentive_report, IncentiveReport};
pub use lcf::{lcf, LcfConfig, LcfOutcome, SelectionRule};
pub use local_search::{social_local_search, LocalSearchResult};
pub use model::{CloudletSpec, Market, MarketBuilder, ProviderId, ProviderSpec};
pub use poa::{best_poa_bound, estimate_poa, market_poa_bound, poa_bound, PoaEstimate};
pub use snapshot::{
    encode_snapshot, encode_snapshot_sharded, load_snapshot, parse_snapshot, save_snapshot,
    save_snapshot_sharded, MarketSnapshot, ShardMeta, SnapshotError,
};
pub use state::GameState;
pub use strategy::{Placement, Profile};
pub use verify::{
    check_capacity, check_congestion, check_cost_reconstruction, check_nash, check_state,
    Certificate, Violation,
};
pub use weighted::WeightedGame;

// Re-export the shared float-comparison helpers so downstream crates can
// `use mec_core::{approx_eq, ...}` without depending on `mec-num` directly.
pub use mec_num::{approx_eq, approx_ge, approx_le, approx_zero};
