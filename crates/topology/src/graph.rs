//! Undirected weighted graph with adjacency lists.
//!
//! This is the substrate every topology in the crate is built on: the
//! GT-ITM-style generator ([`crate::gtitm`]), the embedded AS1755 topology
//! ([`crate::zoo`]) and the MEC role assignment ([`crate::mec`]) all produce
//! or consume a [`Graph`].

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices in `0..graph.node_count()`.
///
/// # Examples
///
/// ```
/// use mec_topology::graph::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Identifier of an edge in a [`Graph`].
///
/// Edge ids are dense indices in `0..graph.edge_count()`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge between two nodes with a non-negative weight
/// (interpreted as a length/latency by the shortest-path routines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Non-negative edge weight (length / latency units).
    pub weight: f64,
}

impl Edge {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n} is not an endpoint of edge {self:?}");
        }
    }
}

/// An undirected weighted graph stored as adjacency lists.
///
/// # Examples
///
/// ```
/// use mec_topology::graph::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b, 1.5);
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// assert!(g.has_edge(a, b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// For each node, the incident edge ids.
    adjacency: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// Parallel edges are allowed (GT-ITM occasionally produces them); use
    /// [`Graph::has_edge`] before insertion to avoid them.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds, if `a == b` (self-loop),
    /// or if `weight` is negative or not finite.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> EdgeId {
        assert!(a.index() < self.node_count(), "node {a} out of bounds");
        assert!(b.index() < self.node_count(), "node {b} out of bounds");
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { a, b, weight });
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterates over `(neighbor, weight)` pairs of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.adjacency[n.index()].iter().map(move |&eid| {
            let e = self.edge(eid);
            (e.other(n), e.weight)
        })
    }

    /// Degree of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].iter().any(|&eid| {
            let e = self.edge(eid);
            (e.a == a && e.b == b) || (e.a == b && e.b == a)
        })
    }

    /// Returns `true` if the graph is connected (an empty graph is connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(c, a, 3.0);
        (g, a, b, c)
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(g.has_edge(b, c));
        assert!(g.has_edge(c, a));
    }

    #[test]
    fn neighbors_and_degree() {
        let (g, a, _, _) = triangle();
        let mut nbrs: Vec<_> = g.neighbors(a).collect();
        nbrs.sort_by_key(|(n, _)| n.index());
        assert_eq!(nbrs.len(), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let (g, a, b, _) = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(a), b);
        assert_eq!(e.other(b), a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let (g, _, _, c) = triangle();
        let e = g.edge(EdgeId(0));
        let _ = e.other(c);
    }

    #[test]
    fn connectivity() {
        let (g, _, _, _) = triangle();
        assert!(g.is_connected());
        let mut g2 = Graph::with_nodes(4);
        g2.add_edge(NodeId(0), NodeId(1), 1.0);
        assert!(!g2.is_connected());
        assert!(Graph::new().is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_weight() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), -1.0);
    }

    #[test]
    fn with_nodes_creates_isolated_nodes() {
        let g = Graph::with_nodes(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for n in g.nodes() {
            assert_eq!(g.degree(n), 0);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }
}
