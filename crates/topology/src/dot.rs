//! Graphviz DOT export for topologies and MEC networks.
//!
//! Renders the generated graphs for inspection (`dot -Tsvg`): transit
//! nodes as boxes, stub nodes as circles, cloudlet sites filled green,
//! data-center sites filled blue. Handy when debugging generator changes
//! or presenting a scenario.

use std::fmt::Write as _;

use crate::gtitm::{NodeKind, Topology};
use crate::mec::MecNetwork;

/// Renders a bare topology as an undirected DOT graph.
pub fn topology_dot(topology: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", topology.name);
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for n in topology.graph.nodes() {
        let shape = match topology.kinds[n.index()] {
            NodeKind::Transit => "box",
            NodeKind::Stub => "circle",
        };
        let _ = writeln!(out, "  {} [shape={shape}, label=\"{}\"];", n.index(), n);
    }
    for e in topology.graph.edges() {
        let _ = writeln!(
            out,
            "  {} -- {} [len={:.2}];",
            e.a.index(),
            e.b.index(),
            (e.weight / 4.0).max(0.3)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a placed MEC network: cloudlet sites green, DC sites blue.
pub fn network_dot(net: &MecNetwork) -> String {
    let topology = net.topology();
    let cloudlet_sites: std::collections::HashSet<usize> = net
        .cloudlets()
        .map(|c| net.cloudlet_site(c).index())
        .collect();
    let dc_sites: std::collections::HashSet<usize> =
        net.data_centers().map(|d| net.dc_site(d).index()).collect();

    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", topology.name);
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for n in topology.graph.nodes() {
        let idx = n.index();
        let (shape, extra) = if dc_sites.contains(&idx) {
            ("box", ", style=filled, fillcolor=\"#7aa6ff\"")
        } else if cloudlet_sites.contains(&idx) {
            ("circle", ", style=filled, fillcolor=\"#7fd98c\"")
        } else {
            match topology.kinds[idx] {
                NodeKind::Transit => ("box", ""),
                NodeKind::Stub => ("circle", ""),
            }
        };
        let _ = writeln!(out, "  {idx} [shape={shape}, label=\"{}\"{extra}];", n);
    }
    for e in topology.graph.edges() {
        let _ = writeln!(out, "  {} -- {};", e.a.index(), e.b.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtitm::{generate, GtItmConfig};
    use crate::mec::{MecNetwork, PlacementConfig};

    #[test]
    fn topology_dot_is_well_formed() {
        let t = generate(&GtItmConfig::for_size(40, 1));
        let dot = topology_dot(&t);
        assert!(dot.starts_with("graph \"gt-itm-40\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), t.graph.edge_count());
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
    }

    #[test]
    fn network_dot_marks_sites() {
        let t = generate(&GtItmConfig::for_size(60, 2));
        let net = MecNetwork::place(t, &PlacementConfig::default());
        let dot = network_dot(&net);
        assert_eq!(dot.matches("#7fd98c").count(), net.cloudlet_count());
        assert_eq!(dot.matches("#7aa6ff").count(), net.data_center_count());
    }
}
