//! Waxman random-graph generator — GT-ITM's "flat random" model.
//!
//! GT-ITM offers both the transit-stub model ([`crate::gtitm`]) and flat
//! Waxman graphs; the paper's sweeps use transit-stub, but Waxman is the
//! standard robustness check for topology-sensitive results (the
//! `ablation_topology` study compares the two). Nodes are scattered in the
//! unit square and edge `(u, v)` exists with probability
//! `α · exp(−d(u,v) / (β · L))`, `L` the maximum distance.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, NodeId};
use crate::gtitm::{NodeKind, Topology};

/// Waxman model parameters.
#[derive(Debug, Clone)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Edge-density parameter `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Distance-decay parameter `β ∈ (0, 1]`.
    pub beta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WaxmanConfig {
    /// Canonical parameters (`α = 0.4`, `β = 0.2`) for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn for_size(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "Waxman graphs need at least 2 nodes");
        WaxmanConfig {
            nodes: n,
            alpha: 0.4,
            beta: 0.2,
            seed,
        }
    }
}

/// Generates a connected Waxman topology.
///
/// Connectivity is guaranteed by linking each node `i ≥ 1` to its nearest
/// already-placed neighbor before the probabilistic edges are drawn
/// (standard practice; the spanning edges follow the same distance-decay
/// preference the model encodes). The ~15 % highest-degree nodes are
/// labelled [`NodeKind::Transit`].
///
/// # Examples
///
/// ```
/// use mec_topology::waxman::{generate, WaxmanConfig};
///
/// let topo = generate(&WaxmanConfig::for_size(80, 1));
/// assert_eq!(topo.graph.node_count(), 80);
/// assert!(topo.graph.is_connected());
/// ```
pub fn generate(config: &WaxmanConfig) -> Topology {
    assert!(
        config.alpha > 0.0 && config.alpha <= 1.0,
        "alpha must be in (0, 1]"
    );
    assert!(
        config.beta > 0.0 && config.beta <= 1.0,
        "beta must be in (0, 1]"
    );
    let n = config.nodes;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let l = std::f64::consts::SQRT_2; // max distance in the unit square

    let mut g = Graph::with_nodes(n);
    // Spanning skeleton: connect each node to its nearest predecessor.
    for i in 1..n {
        let nearest = (0..i)
            .min_by(|&a, &b| dist(i, a).partial_cmp(&dist(i, b)).unwrap())
            .expect("i >= 1");
        g.add_edge(NodeId(i), NodeId(nearest), latency_ms(dist(i, nearest)));
    }
    // Probabilistic Waxman edges.
    for i in 0..n {
        for j in (i + 1)..n {
            if g.has_edge(NodeId(i), NodeId(j)) {
                continue;
            }
            let p = config.alpha * (-dist(i, j) / (config.beta * l)).exp();
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(NodeId(i), NodeId(j), latency_ms(dist(i, j)));
            }
        }
    }

    // Label the densest ~15 % as transit cores (DC anchors).
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| std::cmp::Reverse(g.degree(NodeId(i))));
    let core = (n * 15 / 100).max(1);
    let mut kinds = vec![NodeKind::Stub; n];
    for &i in by_degree.iter().take(core) {
        kinds[i] = NodeKind::Transit;
    }

    debug_assert!(g.is_connected());
    Topology {
        graph: g,
        kinds,
        name: format!("waxman-{n}"),
    }
}

/// Converts a unit-square distance into a link latency in milliseconds
/// (unit square ≈ a 3000 km region; ~5 µs/km propagation).
fn latency_ms(d: f64) -> f64 {
    (d * 3000.0 * 0.005).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::approx_eq;

    #[test]
    fn generates_requested_size_connected() {
        for &n in &[10usize, 50, 150] {
            let t = generate(&WaxmanConfig::for_size(n, 3));
            assert_eq!(t.graph.node_count(), n);
            assert!(t.graph.is_connected());
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&WaxmanConfig::for_size(60, 9));
        let b = generate(&WaxmanConfig::for_size(60, 9));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!((ea.a, ea.b), (eb.a, eb.b));
            // Same seed, same arithmetic: latencies must match exactly.
            assert!(approx_eq(ea.weight, eb.weight, 0.0));
        }
    }

    #[test]
    fn alpha_controls_density() {
        let sparse = generate(&WaxmanConfig {
            alpha: 0.1,
            ..WaxmanConfig::for_size(100, 4)
        });
        let dense = generate(&WaxmanConfig {
            alpha: 0.9,
            ..WaxmanConfig::for_size(100, 4)
        });
        assert!(dense.graph.edge_count() > sparse.graph.edge_count());
    }

    #[test]
    fn has_transit_labels() {
        let t = generate(&WaxmanConfig::for_size(100, 5));
        let cores = t.transit_nodes().len();
        assert!((1..=20).contains(&cores));
    }

    #[test]
    fn latencies_positive() {
        let t = generate(&WaxmanConfig::for_size(40, 6));
        for e in t.graph.edges() {
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let mut c = WaxmanConfig::for_size(10, 0);
        c.alpha = 0.0;
        let _ = generate(&c);
    }
}
