//! Cloudlet-placement strategies.
//!
//! The paper distributes cloudlets "randomly in the network edge". Real
//! operators place them more deliberately; this module provides the random
//! baseline plus two informed strategies so the `placement_strategies`
//! example can quantify how much placement matters for the market's social
//! cost.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::NodeId;
use crate::gtitm::Topology;
use crate::shortest_path::DistanceMatrix;

/// How cloudlet sites are chosen among the stub (edge) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Uniformly random stub nodes (the paper's setup).
    Random,
    /// The highest-degree stub nodes (aggregation points).
    DegreeWeighted,
    /// Greedy k-median: repeatedly add the site that most reduces the mean
    /// stub-node→nearest-cloudlet distance.
    KMedian,
}

/// Selects `count` cloudlet sites from the topology's stub nodes.
///
/// Falls back to all nodes when the topology has no stub/transit split.
///
/// # Panics
///
/// Panics if `count` is zero or exceeds the candidate-node count.
pub fn choose_sites(
    topology: &Topology,
    distances: &DistanceMatrix,
    strategy: PlacementStrategy,
    count: usize,
    seed: u64,
) -> Vec<NodeId> {
    let mut candidates = topology.stub_nodes();
    if candidates.is_empty() {
        candidates = topology.graph.nodes().collect();
    }
    assert!(count >= 1, "need at least one cloudlet");
    assert!(
        count <= candidates.len(),
        "cannot place {count} cloudlets on {} candidates",
        candidates.len()
    );
    match strategy {
        PlacementStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            candidates.shuffle(&mut rng);
            candidates.truncate(count);
            candidates
        }
        PlacementStrategy::DegreeWeighted => {
            candidates.sort_by_key(|&n| (std::cmp::Reverse(topology.graph.degree(n)), n.index()));
            candidates.truncate(count);
            candidates
        }
        PlacementStrategy::KMedian => {
            let demand = candidates.clone(); // users live on stub nodes
            let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
            let mut best_dist: Vec<f64> = vec![f64::INFINITY; demand.len()];
            for _ in 0..count {
                let mut best_site = None;
                let mut best_total = f64::INFINITY;
                for &cand in &candidates {
                    if chosen.contains(&cand) {
                        continue;
                    }
                    let total: f64 = demand
                        .iter()
                        .enumerate()
                        .map(|(k, &d)| best_dist[k].min(distances.distance(d, cand)))
                        .sum();
                    if total < best_total {
                        best_total = total;
                        best_site = Some(cand);
                    }
                }
                let site = best_site.expect("candidates remain");
                for (k, &d) in demand.iter().enumerate() {
                    best_dist[k] = best_dist[k].min(distances.distance(d, site));
                }
                chosen.push(site);
            }
            chosen
        }
    }
}

/// Mean distance from every stub node to its nearest site — the coverage
/// objective the `KMedian` strategy greedily minimizes.
pub fn coverage_cost(topology: &Topology, distances: &DistanceMatrix, sites: &[NodeId]) -> f64 {
    let mut demand = topology.stub_nodes();
    if demand.is_empty() {
        demand = topology.graph.nodes().collect();
    }
    let total: f64 = demand
        .iter()
        .map(|&d| {
            sites
                .iter()
                .map(|&s| distances.distance(d, s))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / demand.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtitm::{generate, GtItmConfig};

    fn setup() -> (Topology, DistanceMatrix) {
        let t = generate(&GtItmConfig::for_size(120, 7));
        let d = DistanceMatrix::new(&t.graph);
        (t, d)
    }

    #[test]
    fn all_strategies_return_requested_count() {
        let (t, d) = setup();
        for s in [
            PlacementStrategy::Random,
            PlacementStrategy::DegreeWeighted,
            PlacementStrategy::KMedian,
        ] {
            let sites = choose_sites(&t, &d, s, 12, 1);
            assert_eq!(sites.len(), 12, "{s:?}");
            let distinct: std::collections::HashSet<_> = sites.iter().collect();
            assert_eq!(distinct.len(), 12, "{s:?} returned duplicates");
        }
    }

    #[test]
    fn kmedian_beats_random_on_coverage() {
        let (t, d) = setup();
        let random = choose_sites(&t, &d, PlacementStrategy::Random, 10, 1);
        let kmed = choose_sites(&t, &d, PlacementStrategy::KMedian, 10, 1);
        assert!(
            coverage_cost(&t, &d, &kmed) <= coverage_cost(&t, &d, &random) + 1e-9,
            "k-median worse than random"
        );
    }

    #[test]
    fn degree_weighted_picks_hubs() {
        let (t, d) = setup();
        let sites = choose_sites(&t, &d, PlacementStrategy::DegreeWeighted, 5, 1);
        let min_chosen = sites.iter().map(|&n| t.graph.degree(n)).min().unwrap();
        let stubs = t.stub_nodes();
        let above = stubs
            .iter()
            .filter(|&&n| t.graph.degree(n) > min_chosen)
            .count();
        assert!(above < 5, "skipped higher-degree stubs");
    }

    #[test]
    fn random_is_seeded() {
        let (t, d) = setup();
        let a = choose_sites(&t, &d, PlacementStrategy::Random, 8, 42);
        let b = choose_sites(&t, &d, PlacementStrategy::Random, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_sites_rejected() {
        let (t, d) = setup();
        let _ = choose_sites(&t, &d, PlacementStrategy::Random, 10_000, 1);
    }
}
