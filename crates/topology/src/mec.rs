//! Two-tiered MEC network: cloudlet and data-center placement on a topology.
//!
//! Mirrors the paper's Section IV-A setup: cloudlets at 10 % of the network
//! size, "randomly distributed in the network edge" (stub nodes), and 5
//! remote data centers in the core (transit nodes).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::NodeId;
use crate::gtitm::Topology;
use crate::shortest_path::DistanceMatrix;

/// Index of a cloudlet site in a [`MecNetwork`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct CloudletId(pub usize);

impl CloudletId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for CloudletId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CL{}", self.0)
    }
}

/// Index of a data-center site in a [`MecNetwork`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct DataCenterId(pub usize);

impl DataCenterId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DataCenterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DC{}", self.0)
    }
}

/// Placement configuration for [`MecNetwork::place`].
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// Fraction of nodes that host a cloudlet (paper: 0.10).
    pub cloudlet_fraction: f64,
    /// Number of remote data centers (paper: 5).
    pub data_centers: usize,
    /// Seed for the random site selection.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            cloudlet_fraction: 0.10,
            data_centers: 5,
            seed: 0,
        }
    }
}

/// A two-tiered MEC network: the physical topology plus cloudlet /
/// data-center sites and the all-pairs distance matrix used for pricing.
#[derive(Debug, Clone)]
pub struct MecNetwork {
    topology: Topology,
    distances: DistanceMatrix,
    cloudlet_sites: Vec<NodeId>,
    dc_sites: Vec<NodeId>,
}

impl MecNetwork {
    /// Places cloudlets and data centers on `topology`.
    ///
    /// Cloudlets go to randomly chosen stub (edge) nodes; data centers to
    /// randomly chosen transit (core) nodes. If the topology has fewer
    /// transit nodes than requested data centers, the remainder go to stub
    /// nodes (mirrors GT-ITM runs where the core is tiny).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no nodes, or if the requested cloudlet
    /// count is zero after rounding.
    pub fn place(topology: Topology, config: &PlacementConfig) -> Self {
        let n = topology.graph.node_count();
        assert!(n > 0, "topology must have nodes");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut stubs = topology.stub_nodes();
        let mut transits = topology.transit_nodes();
        stubs.shuffle(&mut rng);
        transits.shuffle(&mut rng);

        let cloudlet_count = ((n as f64 * config.cloudlet_fraction).round() as usize).max(1);
        assert!(
            cloudlet_count <= stubs.len() + transits.len(),
            "not enough nodes for {cloudlet_count} cloudlets"
        );

        let mut cloudlet_sites: Vec<NodeId> = stubs.iter().copied().take(cloudlet_count).collect();
        if cloudlet_sites.len() < cloudlet_count {
            // Degenerate topologies (all transit): spill into the core.
            let missing = cloudlet_count - cloudlet_sites.len();
            cloudlet_sites.extend(transits.iter().copied().take(missing));
        }

        let mut dc_sites: Vec<NodeId> =
            transits.iter().copied().take(config.data_centers).collect();
        if dc_sites.len() < config.data_centers {
            let used: std::collections::HashSet<NodeId> = cloudlet_sites.iter().copied().collect();
            for &s in stubs.iter().rev() {
                if dc_sites.len() == config.data_centers {
                    break;
                }
                if !used.contains(&s) && !dc_sites.contains(&s) {
                    dc_sites.push(s);
                }
            }
        }

        let distances = DistanceMatrix::new(&topology.graph);
        MecNetwork {
            topology,
            distances,
            cloudlet_sites,
            dc_sites,
        }
    }

    /// Like [`MecNetwork::place`] but choosing cloudlet sites with an
    /// explicit [`crate::placement::PlacementStrategy`] instead of the
    /// paper's uniform-random rule. Data centers are placed as in
    /// [`MecNetwork::place`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`MecNetwork::place`].
    pub fn place_with_strategy(
        topology: Topology,
        config: &PlacementConfig,
        strategy: crate::placement::PlacementStrategy,
    ) -> Self {
        let n = topology.graph.node_count();
        assert!(n > 0, "topology must have nodes");
        let distances = DistanceMatrix::new(&topology.graph);
        let cloudlet_count = ((n as f64 * config.cloudlet_fraction).round() as usize).max(1);
        let cloudlet_sites = crate::placement::choose_sites(
            &topology,
            &distances,
            strategy,
            cloudlet_count,
            config.seed,
        );

        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xDC));
        let mut transits = topology.transit_nodes();
        transits.shuffle(&mut rng);
        let mut dc_sites: Vec<NodeId> = transits
            .into_iter()
            .filter(|s| !cloudlet_sites.contains(s))
            .take(config.data_centers)
            .collect();
        if dc_sites.len() < config.data_centers {
            for node in topology.graph.nodes() {
                if dc_sites.len() == config.data_centers {
                    break;
                }
                if !cloudlet_sites.contains(&node) && !dc_sites.contains(&node) {
                    dc_sites.push(node);
                }
            }
        }
        MecNetwork {
            topology,
            distances,
            cloudlet_sites,
            dc_sites,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// All-pairs distance matrix of the physical graph.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Number of cloudlet sites.
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlet_sites.len()
    }

    /// Number of data-center sites.
    pub fn data_center_count(&self) -> usize {
        self.dc_sites.len()
    }

    /// Ids of all cloudlets.
    pub fn cloudlets(&self) -> impl Iterator<Item = CloudletId> + '_ {
        (0..self.cloudlet_sites.len()).map(CloudletId)
    }

    /// Ids of all data centers.
    pub fn data_centers(&self) -> impl Iterator<Item = DataCenterId> + '_ {
        (0..self.dc_sites.len()).map(DataCenterId)
    }

    /// Physical node hosting cloudlet `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn cloudlet_site(&self, c: CloudletId) -> NodeId {
        self.cloudlet_sites[c.index()]
    }

    /// Physical node hosting data center `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of bounds.
    pub fn dc_site(&self, d: DataCenterId) -> NodeId {
        self.dc_sites[d.index()]
    }

    /// Latency distance between cloudlet `c` and data center `d`.
    pub fn cloudlet_dc_distance(&self, c: CloudletId, d: DataCenterId) -> f64 {
        self.distances
            .distance(self.cloudlet_site(c), self.dc_site(d))
    }

    /// Latency distance from an arbitrary node to cloudlet `c`.
    pub fn node_cloudlet_distance(&self, n: NodeId, c: CloudletId) -> f64 {
        self.distances.distance(n, self.cloudlet_site(c))
    }

    /// Latency distance from an arbitrary node to data center `d`.
    pub fn node_dc_distance(&self, n: NodeId, d: DataCenterId) -> f64 {
        self.distances.distance(n, self.dc_site(d))
    }

    /// The data center closest to node `n` (ties to the smallest id).
    ///
    /// # Panics
    ///
    /// Panics if the network has no data centers.
    pub fn nearest_dc(&self, n: NodeId) -> DataCenterId {
        assert!(!self.dc_sites.is_empty(), "network has no data centers");
        let mut best = DataCenterId(0);
        let mut best_d = f64::INFINITY;
        for d in self.data_centers() {
            let dist = self.node_dc_distance(n, d);
            if dist < best_d {
                best_d = dist;
                best = d;
            }
        }
        best
    }

    /// The cloudlet closest to node `n` (ties to the smallest id).
    ///
    /// # Panics
    ///
    /// Panics if the network has no cloudlets.
    pub fn nearest_cloudlet(&self, n: NodeId) -> CloudletId {
        assert!(!self.cloudlet_sites.is_empty(), "network has no cloudlets");
        let mut best = CloudletId(0);
        let mut best_d = f64::INFINITY;
        for c in self.cloudlets() {
            let dist = self.node_cloudlet_distance(n, c);
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        best
    }

    /// Buckets cloudlets into `n` spatial regions by proximity.
    ///
    /// Returns a region index in `0..n` for every cloudlet (indexed by
    /// [`CloudletId`]). Seeds are picked greedily k-center style — the
    /// first seed is cloudlet 0, each further seed the cloudlet farthest
    /// (in shortest-path latency between sites) from every seed chosen so
    /// far — then each cloudlet joins its nearest seed (ties to the
    /// smallest region index). The construction is deterministic, so the
    /// same network always shards the same way, and every region is
    /// non-empty as long as `n <= cloudlet_count()`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the cloudlet count.
    pub fn regions(&self, n: usize) -> Vec<usize> {
        let m = self.cloudlet_count();
        assert!(n > 0, "need at least one region");
        assert!(n <= m, "cannot split {m} cloudlets into {n} regions");

        let site = |c: usize| self.cloudlet_sites[c];
        let d = |a: usize, b: usize| self.distances.distance(site(a), site(b));

        // Greedy farthest-point seeding: min-distance-to-any-seed, maxed.
        let mut seeds: Vec<usize> = vec![0];
        let mut min_to_seed: Vec<f64> = (0..m).map(|c| d(c, 0)).collect();
        while seeds.len() < n {
            let mut far = None;
            let mut far_d = f64::NEG_INFINITY;
            for (c, &dist) in min_to_seed.iter().enumerate() {
                if seeds.contains(&c) {
                    continue;
                }
                // Unreachable pairs (infinite distance) still make fine
                // seeds: a disconnected cluster deserves its own region.
                let dist = if dist.is_finite() { dist } else { f64::MAX };
                if dist > far_d {
                    far_d = dist;
                    far = Some(c);
                }
            }
            let far = far.expect("n <= cloudlet_count leaves a non-seed candidate");
            seeds.push(far);
            for (c, slot) in min_to_seed.iter_mut().enumerate() {
                let nd = d(c, far);
                if nd < *slot {
                    *slot = nd;
                }
            }
        }

        (0..m)
            .map(|c| {
                // A seed anchors its own region even when another seed is
                // equidistant, so no region can come out empty.
                if let Some(r) = seeds.iter().position(|&s| s == c) {
                    return r;
                }
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (r, &s) in seeds.iter().enumerate() {
                    let dist = d(c, s);
                    if dist < best_d {
                        best_d = dist;
                        best = r;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtitm::{generate, GtItmConfig};
    use crate::zoo::as1755;

    fn net(n: usize, seed: u64) -> MecNetwork {
        let topo = generate(&GtItmConfig::for_size(n, seed));
        MecNetwork::place(
            topo,
            &PlacementConfig {
                seed,
                ..PlacementConfig::default()
            },
        )
    }

    #[test]
    fn paper_default_counts() {
        let m = net(200, 1);
        assert_eq!(m.cloudlet_count(), 20); // 10 % of 200
        assert_eq!(m.data_center_count(), 5);
    }

    #[test]
    fn cloudlets_on_stub_nodes() {
        let m = net(150, 2);
        let stubs: std::collections::HashSet<_> = m.topology().stub_nodes().into_iter().collect();
        for c in m.cloudlets() {
            assert!(stubs.contains(&m.cloudlet_site(c)));
        }
    }

    #[test]
    fn dcs_on_transit_nodes() {
        let m = net(300, 3);
        let transits: std::collections::HashSet<_> =
            m.topology().transit_nodes().into_iter().collect();
        for d in m.data_centers() {
            assert!(transits.contains(&m.dc_site(d)));
        }
    }

    #[test]
    fn regions_cover_and_fill() {
        let m = net(200, 5);
        for n in [1, 2, 4, m.cloudlet_count()] {
            let regions = m.regions(n);
            assert_eq!(regions.len(), m.cloudlet_count());
            assert!(regions.iter().all(|&r| r < n));
            for r in 0..n {
                assert!(regions.contains(&r), "region {r} of {n} is empty");
            }
        }
    }

    #[test]
    fn regions_are_deterministic_and_proximal() {
        let m = net(200, 6);
        let a = m.regions(4);
        assert_eq!(a, m.regions(4), "same network must shard the same way");

        // Proximity sanity: a cloudlet is no farther from some member of
        // its own region than from every member of every other region.
        let d = |x: usize, y: usize| {
            m.distances().distance(
                m.cloudlet_site(CloudletId(x)),
                m.cloudlet_site(CloudletId(y)),
            )
        };
        for c in 0..m.cloudlet_count() {
            let own = (0..m.cloudlet_count())
                .filter(|&x| x != c && a[x] == a[c])
                .map(|x| d(c, x))
                .fold(f64::INFINITY, f64::min);
            let other = (0..m.cloudlet_count())
                .filter(|&x| a[x] != a[c])
                .map(|x| d(c, x))
                .fold(f64::INFINITY, f64::min);
            if own.is_finite() && other.is_finite() {
                // Clusters may interleave at the margin, but a cloudlet
                // should never sit 3x closer to a foreign region.
                assert!(own <= other * 3.0 + 1e-9, "cloudlet {c}: {own} vs {other}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "regions")]
    fn regions_rejects_more_regions_than_cloudlets() {
        let m = net(100, 7);
        let _ = m.regions(m.cloudlet_count() + 1);
    }

    #[test]
    fn distances_finite() {
        let m = net(100, 4);
        for c in m.cloudlets() {
            for d in m.data_centers() {
                assert!(m.cloudlet_dc_distance(c, d).is_finite());
            }
        }
    }

    #[test]
    fn nearest_dc_is_nearest() {
        let m = net(120, 5);
        for c in m.cloudlets() {
            let site = m.cloudlet_site(c);
            let nd = m.nearest_dc(site);
            for d in m.data_centers() {
                assert!(m.node_dc_distance(site, nd) <= m.node_dc_distance(site, d) + 1e-12);
            }
        }
    }

    #[test]
    fn nearest_cloudlet_is_nearest() {
        let m = net(120, 6);
        for n in m.topology().graph.nodes().take(20) {
            let nc = m.nearest_cloudlet(n);
            for c in m.cloudlets() {
                assert!(m.node_cloudlet_distance(n, nc) <= m.node_cloudlet_distance(n, c) + 1e-12);
            }
        }
    }

    #[test]
    fn works_on_as1755() {
        let m = MecNetwork::place(as1755(), &PlacementConfig::default());
        assert_eq!(m.cloudlet_count(), 9); // 10 % of 87, rounded
        assert_eq!(m.data_center_count(), 5);
    }

    #[test]
    fn deterministic_placement() {
        let a = net(100, 9);
        let b = net(100, 9);
        for c in a.cloudlets() {
            assert_eq!(a.cloudlet_site(c), b.cloudlet_site(c));
        }
    }

    #[test]
    fn display_ids() {
        assert_eq!(CloudletId(3).to_string(), "CL3");
        assert_eq!(DataCenterId(1).to_string(), "DC1");
    }

    #[test]
    fn strategy_placement_produces_valid_network() {
        use crate::placement::PlacementStrategy;
        let topo = generate(&GtItmConfig::for_size(120, 8));
        for strategy in [
            PlacementStrategy::Random,
            PlacementStrategy::DegreeWeighted,
            PlacementStrategy::KMedian,
        ] {
            let m = MecNetwork::place_with_strategy(
                topo.clone(),
                &PlacementConfig::default(),
                strategy,
            );
            assert_eq!(m.cloudlet_count(), 12);
            assert_eq!(m.data_center_count(), 5);
            // DC and cloudlet sites never collide under this path.
            for d in m.data_centers() {
                for c in m.cloudlets() {
                    assert_ne!(m.dc_site(d), m.cloudlet_site(c));
                }
            }
        }
    }

    #[test]
    fn kmedian_placement_improves_coverage() {
        use crate::placement::{coverage_cost, PlacementStrategy};
        let topo = generate(&GtItmConfig::for_size(150, 9));
        let rand = MecNetwork::place_with_strategy(
            topo.clone(),
            &PlacementConfig::default(),
            PlacementStrategy::Random,
        );
        let kmed = MecNetwork::place_with_strategy(
            topo,
            &PlacementConfig::default(),
            PlacementStrategy::KMedian,
        );
        let c_rand = coverage_cost(
            rand.topology(),
            rand.distances(),
            &rand
                .cloudlets()
                .map(|c| rand.cloudlet_site(c))
                .collect::<Vec<_>>(),
        );
        let c_kmed = coverage_cost(
            kmed.topology(),
            kmed.distances(),
            &kmed
                .cloudlets()
                .map(|c| kmed.cloudlet_site(c))
                .collect::<Vec<_>>(),
        );
        assert!(c_kmed <= c_rand + 1e-9);
    }
}
