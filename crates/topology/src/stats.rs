//! Topology statistics: sanity metrics for generated graphs.
//!
//! The experiments are topology-sensitive, so the generators are validated
//! against the structural properties the paper's setup relies on: ISP-like
//! degree heterogeneity, small diameters, and a dense-core / sparse-edge
//! split. These metrics also feed the `ablation_topology` comparison of
//! transit-stub vs Waxman graphs.

use crate::graph::Graph;
use crate::shortest_path::DistanceMatrix;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Edge density `2m / (n(n−1))`.
    pub density: f64,
    /// Global clustering coefficient (transitivity).
    pub clustering: f64,
    /// Mean finite pairwise shortest-path length (weighted).
    pub mean_path_length: f64,
    /// Weighted diameter (largest finite pairwise distance).
    pub diameter: f64,
}

/// Computes [`GraphStats`] for `g`.
///
/// Runs all-pairs shortest paths internally — intended for the paper-scale
/// graphs (≤ a few hundred nodes).
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.node_count();
    assert!(n >= 2, "statistics need at least 2 nodes");
    let m = g.edge_count();
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let min_degree = *degrees.iter().min().unwrap();
    let max_degree = *degrees.iter().max().unwrap();
    let mean_degree = degrees.iter().sum::<usize>() as f64 / n as f64;
    let density = 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0));

    // Transitivity: 3 × triangles / connected triples.
    let mut triangles = 0usize;
    let mut triples = 0usize;
    let neighbor_sets: Vec<std::collections::HashSet<usize>> = g
        .nodes()
        .map(|v| g.neighbors(v).map(|(u, _)| u.index()).collect())
        .collect();
    for v in 0..n {
        let d = neighbor_sets[v].len();
        triples += d * d.saturating_sub(1) / 2;
        let nbrs: Vec<usize> = neighbor_sets[v].iter().copied().collect();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if neighbor_sets[nbrs[i]].contains(&nbrs[j]) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle counted once per corner = 3 times.
    let clustering = if triples > 0 {
        triangles as f64 / triples as f64
    } else {
        0.0
    };

    let dm = DistanceMatrix::new(g);
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in g.nodes() {
        for b in g.nodes() {
            if a != b {
                let d = dm.distance(a, b);
                if d.is_finite() {
                    total += d;
                    pairs += 1;
                }
            }
        }
    }
    GraphStats {
        nodes: n,
        edges: m,
        min_degree,
        max_degree,
        mean_degree,
        density,
        clustering,
        mean_path_length: if pairs > 0 { total / pairs as f64 } else { 0.0 },
        diameter: dm.diameter().unwrap_or(0.0),
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes            {:>10}", self.nodes)?;
        writeln!(f, "edges            {:>10}", self.edges)?;
        writeln!(
            f,
            "degree           {:>4} min {:>4} max {:>8.2} mean",
            self.min_degree, self.max_degree, self.mean_degree
        )?;
        writeln!(f, "density          {:>10.4}", self.density)?;
        writeln!(f, "clustering       {:>10.4}", self.clustering)?;
        writeln!(f, "mean path (ms)   {:>10.2}", self.mean_path_length)?;
        write!(f, "diameter (ms)    {:>10.2}", self.diameter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use crate::gtitm::{generate as gen_ts, GtItmConfig};
    use crate::waxman::{generate as gen_wax, WaxmanConfig};
    use crate::zoo::as1755;
    use mec_num::assert_approx_eq;

    #[test]
    fn complete_graph_stats() {
        let mut g = Graph::with_nodes(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(NodeId(i), NodeId(j), 1.0);
            }
        }
        let s = graph_stats(&g);
        assert_eq!(s.edges, 6);
        assert_eq!(s.min_degree, 3);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.clustering - 1.0).abs() < 1e-12);
        assert!((s.mean_path_length - 1.0).abs() < 1e-12);
        assert_approx_eq!(s.diameter, 1.0, 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        let s = graph_stats(&g);
        assert_approx_eq!(s.clustering, 0.0, 1e-12);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 1);
    }

    #[test]
    fn transit_stub_looks_isp_like() {
        let t = gen_ts(&GtItmConfig::for_size(200, 1));
        let s = graph_stats(&t.graph);
        // Sparse edge, heterogeneous degrees, modest diameter.
        assert!(s.density < 0.1, "density {}", s.density);
        assert!(s.max_degree >= 3 * s.min_degree.max(1));
        assert!(s.diameter < 200.0);
    }

    #[test]
    fn as1755_stats_match_published_counts() {
        let s = graph_stats(&as1755().graph);
        assert_eq!(s.nodes, 87);
        assert_eq!(s.edges, 161);
        assert!((s.mean_degree - 2.0 * 161.0 / 87.0).abs() < 1e-9);
    }

    #[test]
    fn waxman_density_between_models() {
        let w = gen_wax(&WaxmanConfig::for_size(100, 2));
        let s = graph_stats(&w.graph);
        assert!(s.density > 0.01 && s.density < 0.5, "density {}", s.density);
    }

    #[test]
    fn display_renders() {
        let t = gen_ts(&GtItmConfig::for_size(50, 3));
        let text = graph_stats(&t.graph).to_string();
        assert!(text.contains("nodes"));
        assert!(text.contains("diameter"));
    }
}
