//! The AS1755 (Ebone) ISP topology used by the paper's testbed overlay.
//!
//! The paper builds its overlay network "following the real topology AS1755"
//! from the Internet Topology Zoo / Rocketfuel data sets \[29\]. The published
//! AS1755 backbone map has 87 routers and 161 links. The raw map is not
//! redistributable here, so this module *synthesizes* a deterministic graph
//! with exactly those counts and ISP-like degree heterogeneity (a ring
//! backbone with preferential-attachment chords — the standard structural
//! surrogate for router-level ISP maps). The experiments only consume node
//! count, connectivity and hop distances, which this surrogate preserves.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::Graph;
use crate::gtitm::{NodeKind, Topology};

/// Number of routers in the AS1755 (Ebone) backbone map.
pub const AS1755_NODES: usize = 87;
/// Number of links in the AS1755 (Ebone) backbone map.
pub const AS1755_EDGES: usize = 161;

/// Fixed seed so that every build of the library ships the identical graph.
const AS1755_SEED: u64 = 0x1755;

/// Builds the AS1755 surrogate topology (87 nodes, 161 links, connected).
///
/// The graph is deterministic: repeated calls return identical topologies.
/// The ~15 % highest-degree routers are labelled [`NodeKind::Transit`]
/// (backbone/PoP cores where data centers attach); the rest are
/// [`NodeKind::Stub`].
///
/// # Examples
///
/// ```
/// use mec_topology::zoo::{as1755, AS1755_NODES, AS1755_EDGES};
///
/// let topo = as1755();
/// assert_eq!(topo.graph.node_count(), AS1755_NODES);
/// assert_eq!(topo.graph.edge_count(), AS1755_EDGES);
/// assert!(topo.graph.is_connected());
/// ```
pub fn as1755() -> Topology {
    let mut rng = StdRng::seed_from_u64(AS1755_SEED);
    let mut g = Graph::with_nodes(AS1755_NODES);

    // Ring backbone guarantees connectivity (87 edges).
    for i in 0..AS1755_NODES {
        let j = (i + 1) % AS1755_NODES;
        let w = rng.random_range(1.0..6.0);
        g.add_edge(i.into(), j.into(), w);
    }

    // Preferential-attachment chords up to the published link count.
    while g.edge_count() < AS1755_EDGES {
        // Sample an endpoint biased by degree (router-level maps are heavy
        // tailed): pick an edge uniformly and reuse one of its endpoints.
        let e = rng.random_range(0..g.edge_count());
        let edge = *g.edge(crate::graph::EdgeId(e));
        let a = if rng.random_bool(0.5) { edge.a } else { edge.b };
        let b = crate::graph::NodeId(rng.random_range(0..AS1755_NODES));
        if a != b && !g.has_edge(a, b) {
            let w = rng.random_range(1.0..10.0);
            g.add_edge(a, b, w);
        }
    }

    // Label the top ~15 % degree routers as transit cores.
    let mut by_degree: Vec<usize> = (0..AS1755_NODES).collect();
    by_degree.sort_by_key(|&i| std::cmp::Reverse(g.degree(i.into())));
    let core = AS1755_NODES * 15 / 100;
    let mut kinds = vec![NodeKind::Stub; AS1755_NODES];
    for &i in by_degree.iter().take(core) {
        kinds[i] = NodeKind::Transit;
    }

    Topology {
        graph: g,
        kinds,
        name: "as1755".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_counts() {
        let t = as1755();
        assert_eq!(t.graph.node_count(), 87);
        assert_eq!(t.graph.edge_count(), 161);
    }

    #[test]
    fn connected() {
        assert!(as1755().graph.is_connected());
    }

    #[test]
    fn deterministic() {
        let a = as1755();
        let b = as1755();
        for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!(ea.a, eb.a);
            assert_eq!(ea.b, eb.b);
            assert_eq!(ea.weight, eb.weight);
        }
        assert_eq!(a.kinds, b.kinds);
    }

    #[test]
    fn has_transit_cores() {
        let t = as1755();
        let cores = t.transit_nodes();
        assert!(!cores.is_empty());
        assert!(cores.len() < 87 / 4);
        // Cores must be among the highest-degree routers.
        let min_core_deg = cores.iter().map(|&n| t.graph.degree(n)).min().unwrap();
        assert!(min_core_deg >= 2);
    }

    #[test]
    fn degree_heterogeneity() {
        let t = as1755();
        let degs: Vec<usize> = t.graph.nodes().map(|n| t.graph.degree(n)).collect();
        let max = *degs.iter().max().unwrap();
        let min = *degs.iter().min().unwrap();
        // ISP maps are heavy tailed: hubs have several times the leaf degree.
        assert!(max >= 3 * min.max(1), "max {max} min {min}");
    }
}
