//! GT-ITM-style transit-stub topology generator.
//!
//! The paper generates its simulation topologies with the GT-ITM tool \[9\],
//! varying the network size from 50 to 400 switch nodes. GT-ITM's flagship
//! model is the *transit-stub* model: a small core of interconnected transit
//! domains, each transit node attaching several stub domains of access nodes.
//! This module reimplements that model with the same structural knobs
//! (domain counts, intra-domain edge probability) so that the generated
//! topologies have the statistics the paper's experiments rely on: a small
//! dense core, a large sparse edge, and guaranteed connectivity.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, NodeId};

/// Role of a node in a transit-stub topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NodeKind {
    /// Core (transit-domain) node; data centers attach here.
    Transit,
    /// Edge (stub-domain) node; cloudlets and users attach here.
    Stub,
}

/// Configuration of the transit-stub generator.
///
/// Defaults mirror GT-ITM's canonical `ts` parameter file scaled to the
/// requested size.
#[derive(Debug, Clone)]
pub struct GtItmConfig {
    /// Total number of nodes to aim for (the generator lands within a few
    /// nodes of this; see [`generate`]).
    pub target_nodes: usize,
    /// Number of transit domains (the "T" parameter).
    pub transit_domains: usize,
    /// Nodes per transit domain (the "NT" parameter).
    pub nodes_per_transit: usize,
    /// Stub domains hanging off each transit node (the "S" parameter).
    pub stubs_per_transit_node: usize,
    /// Probability of an extra intra-domain edge beyond the spanning tree.
    pub intra_edge_prob: f64,
    /// RNG seed; the same seed yields the same topology.
    pub seed: u64,
}

impl GtItmConfig {
    /// Canonical configuration for a network of roughly `n` nodes.
    ///
    /// Splits the node budget as GT-ITM's example files do: ~10 % transit
    /// nodes, the rest spread uniformly across stub domains.
    ///
    /// # Panics
    ///
    /// Panics if `n < 10`.
    pub fn for_size(n: usize, seed: u64) -> Self {
        assert!(n >= 10, "transit-stub topologies need at least 10 nodes");
        let transit_domains = (n / 100).clamp(1, 4);
        let nodes_per_transit = ((n / 10) / transit_domains).max(2);
        let stubs_per_transit_node = 2;
        GtItmConfig {
            target_nodes: n,
            transit_domains,
            nodes_per_transit,
            stubs_per_transit_node,
            intra_edge_prob: 0.3,
            seed,
        }
    }
}

/// A generated topology: the graph plus each node's role.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The physical graph; edge weights are link latencies in milliseconds.
    pub graph: Graph,
    /// Role of every node, indexed by [`NodeId`].
    pub kinds: Vec<NodeKind>,
    /// Human-readable name ("gt-itm-250", "as1755", ...).
    pub name: String,
}

impl Topology {
    /// Ids of all transit (core) nodes.
    pub fn transit_nodes(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Transit)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Ids of all stub (edge) nodes.
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Stub)
            .map(|(i, _)| NodeId(i))
            .collect()
    }
}

/// Latency ranges (ms) per link class, loosely matching wide-area vs
/// metro-area links.
const TRANSIT_TRANSIT_MS: (f64, f64) = (8.0, 20.0);
const TRANSIT_STUB_MS: (f64, f64) = (2.0, 6.0);
const STUB_STUB_MS: (f64, f64) = (0.5, 2.0);

fn sample(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    rng.random_range(range.0..range.1)
}

/// Connects `members` into a random spanning tree plus extra edges with
/// probability `p`, weights drawn from `w`.
fn connect_domain(g: &mut Graph, rng: &mut StdRng, members: &[NodeId], p: f64, w: (f64, f64)) {
    for (i, &m) in members.iter().enumerate().skip(1) {
        let parent = members[rng.random_range(0..i)];
        let weight = sample(rng, w);
        g.add_edge(parent, m, weight);
    }
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if !g.has_edge(members[i], members[j]) && rng.random_bool(p) {
                let weight = sample(rng, w);
                g.add_edge(members[i], members[j], weight);
            }
        }
    }
}

/// Generates a transit-stub topology.
///
/// The result is always connected. The exact node count may deviate slightly
/// from `config.target_nodes` because stub domains have integral sizes; the
/// generator pads the final stub domain to land exactly on the target.
///
/// # Examples
///
/// ```
/// use mec_topology::gtitm::{generate, GtItmConfig};
///
/// let topo = generate(&GtItmConfig::for_size(100, 42));
/// assert_eq!(topo.graph.node_count(), 100);
/// assert!(topo.graph.is_connected());
/// ```
pub fn generate(config: &GtItmConfig) -> Topology {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();
    let mut kinds = Vec::new();

    // 1. Transit domains.
    let mut transit_domains: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..config.transit_domains {
        let mut members = Vec::new();
        for _ in 0..config.nodes_per_transit {
            let n = g.add_node();
            kinds.push(NodeKind::Transit);
            members.push(n);
        }
        connect_domain(
            &mut g,
            &mut rng,
            &members,
            config.intra_edge_prob.max(0.5),
            TRANSIT_TRANSIT_MS,
        );
        transit_domains.push(members);
    }

    // 2. Interconnect transit domains in a ring plus random chords.
    let d = transit_domains.len();
    if d > 1 {
        for i in 0..d {
            let a = transit_domains[i][rng.random_range(0..transit_domains[i].len())];
            let nb = &transit_domains[(i + 1) % d];
            let b = nb[rng.random_range(0..nb.len())];
            if !g.has_edge(a, b) {
                g.add_edge(a, b, sample(&mut rng, TRANSIT_TRANSIT_MS));
            }
        }
    }

    // 3. Stub domains: size the stubs so the total node count hits the target.
    let transit_total = config.transit_domains * config.nodes_per_transit;
    let stub_domain_count = transit_total * config.stubs_per_transit_node;
    let stub_total = config.target_nodes.saturating_sub(transit_total);
    let base = stub_total / stub_domain_count.max(1);
    let mut remainder = stub_total % stub_domain_count.max(1);

    for domain in &transit_domains {
        for &tnode in domain {
            for _ in 0..config.stubs_per_transit_node {
                let mut size = base;
                if remainder > 0 {
                    size += 1;
                    remainder -= 1;
                }
                if size == 0 {
                    continue;
                }
                let mut members = Vec::new();
                for _ in 0..size {
                    let n = g.add_node();
                    kinds.push(NodeKind::Stub);
                    members.push(n);
                }
                connect_domain(
                    &mut g,
                    &mut rng,
                    &members,
                    config.intra_edge_prob,
                    STUB_STUB_MS,
                );
                // Attach the stub domain to its transit node.
                let gw = members[rng.random_range(0..members.len())];
                g.add_edge(tnode, gw, sample(&mut rng, TRANSIT_STUB_MS));
            }
        }
    }

    debug_assert!(g.is_connected());
    Topology {
        graph: g,
        kinds,
        name: format!("gt-itm-{}", config.target_nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::{approx_eq, assert_approx_eq};

    #[test]
    fn hits_target_size() {
        for &n in &[50, 100, 250, 400] {
            let topo = generate(&GtItmConfig::for_size(n, 1));
            assert_eq!(topo.graph.node_count(), n, "size {n}");
        }
    }

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let topo = generate(&GtItmConfig::for_size(120, seed));
            assert!(topo.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GtItmConfig::for_size(80, 7));
        let b = generate(&GtItmConfig::for_size(80, 7));
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!(ea.a, eb.a);
            assert_eq!(ea.b, eb.b);
            // Same seed, same arithmetic: weights must match exactly.
            assert_approx_eq!(ea.weight, eb.weight, 0.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GtItmConfig::for_size(80, 1));
        let b = generate(&GtItmConfig::for_size(80, 2));
        // Edge sets will essentially never coincide.
        let same = a.graph.edge_count() == b.graph.edge_count()
            && a.graph
                .edges()
                .zip(b.graph.edges())
                .all(|(x, y)| x.a == y.a && x.b == y.b && approx_eq(x.weight, y.weight, 0.0));
        assert!(!same);
    }

    #[test]
    fn transit_fraction_is_about_ten_percent() {
        let topo = generate(&GtItmConfig::for_size(200, 3));
        let transit = topo.transit_nodes().len();
        let frac = transit as f64 / 200.0;
        assert!(frac > 0.03 && frac < 0.2, "transit fraction {frac}");
    }

    #[test]
    fn stub_and_transit_partition_nodes() {
        let topo = generate(&GtItmConfig::for_size(150, 4));
        assert_eq!(
            topo.transit_nodes().len() + topo.stub_nodes().len(),
            topo.graph.node_count()
        );
    }

    #[test]
    fn edge_weights_positive() {
        let topo = generate(&GtItmConfig::for_size(100, 5));
        for e in topo.graph.edges() {
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least 10 nodes")]
    fn rejects_tiny_networks() {
        let _ = GtItmConfig::for_size(5, 0);
    }
}
