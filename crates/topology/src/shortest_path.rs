//! Single-source and all-pairs shortest paths (Dijkstra).
//!
//! Edge weights model link latency/length. The MEC cost model uses shortest
//! hop/latency distances between cloudlets, data centers and user locations
//! to price remote serving and update traffic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, NodeId};

/// Result of a single-source shortest-path run.
///
/// Produced by [`dijkstra`]. Distances of unreachable nodes are
/// [`f64::INFINITY`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source node of this run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `to` (`f64::INFINITY` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of bounds.
    pub fn distance(&self, to: NodeId) -> f64 {
        self.dist[to.index()]
    }

    /// Returns `true` if `to` is reachable from the source.
    pub fn is_reachable(&self, to: NodeId) -> bool {
        self.dist[to.index()].is_finite()
    }

    /// Reconstructs the node sequence from the source to `to`, inclusive.
    ///
    /// Returns `None` if `to` is unreachable.
    pub fn path(&self, to: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra's algorithm from `source`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Examples
///
/// ```
/// use mec_topology::graph::Graph;
/// use mec_topology::shortest_path::dijkstra;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0.into(), 1.into(), 1.0);
/// g.add_edge(1.into(), 2.into(), 2.0);
/// let sp = dijkstra(&g, 0.into());
/// assert_eq!(sp.distance(2.into()), 3.0);
/// assert_eq!(sp.path(2.into()).unwrap().len(), 3);
/// ```
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    assert!(source.index() < g.node_count(), "source out of bounds");
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// Dense all-pairs shortest-path distance matrix.
///
/// Runs Dijkstra from every node: `O(n (m + n) log n)`, fine for the paper's
/// topology sizes (≤ 400 nodes).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths on `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        for s in g.nodes() {
            let sp = dijkstra(g, s);
            for t in g.nodes() {
                dist[s.index() * n + t.index()] = sp.distance(t);
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Distance between `a` and `b` (`f64::INFINITY` if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "node out of bounds"
        );
        self.dist[a.index() * self.n + b.index()]
    }

    /// The largest finite pairwise distance (graph diameter), or `None` for
    /// an empty matrix.
    pub fn diameter(&self) -> Option<f64> {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use mec_num::assert_approx_eq;

    fn line(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line(5);
        let sp = dijkstra(&g, NodeId(0));
        for i in 0..5 {
            assert_eq!(sp.distance(NodeId(i)), i as f64);
        }
    }

    #[test]
    fn prefers_shorter_weighted_path() {
        // 0 -(10)- 1, 0 -(1)- 2 -(1)- 1: shortest 0->1 is via 2.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 10.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(1), 1.0);
        let sp = dijkstra(&g, NodeId(0));
        assert_approx_eq!(sp.distance(NodeId(1)), 2.0, 1e-12);
        assert_eq!(
            sp.path(NodeId(1)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let sp = dijkstra(&g, NodeId(0));
        assert!(!sp.is_reachable(NodeId(2)));
        assert_eq!(sp.distance(NodeId(2)), f64::INFINITY);
        assert!(sp.path(NodeId(2)).is_none());
    }

    #[test]
    fn source_distance_zero() {
        let g = line(3);
        let sp = dijkstra(&g, NodeId(1));
        assert_approx_eq!(sp.distance(NodeId(1)), 0.0, 1e-12);
        assert_eq!(sp.path(NodeId(1)).unwrap(), vec![NodeId(1)]);
        assert_eq!(sp.source(), NodeId(1));
    }

    #[test]
    fn distance_matrix_symmetric() {
        let g = line(6);
        let m = DistanceMatrix::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
        assert_eq!(m.diameter(), Some(5.0));
        assert_eq!(m.node_count(), 6);
    }

    #[test]
    fn matrix_triangle_inequality() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(1), NodeId(2), 3.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(3), 9.0);
        let m = DistanceMatrix::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9);
                }
            }
        }
    }
}
