//! Network-topology substrate for the MEC service-caching reproduction.
//!
//! The paper evaluates on GT-ITM transit-stub topologies (50–400 nodes) and
//! on the real AS1755 (Ebone) ISP map. This crate provides:
//!
//! * [`graph`] — undirected weighted graphs,
//! * [`shortest_path`] — Dijkstra and all-pairs distance matrices,
//! * [`gtitm`] — a GT-ITM-style transit-stub generator,
//! * [`zoo`] — the AS1755 surrogate topology,
//! * [`mec`] — cloudlet / data-center placement producing a two-tiered
//!   [`mec::MecNetwork`].
//!
//! # Examples
//!
//! ```
//! use mec_topology::gtitm::{generate, GtItmConfig};
//! use mec_topology::mec::{MecNetwork, PlacementConfig};
//!
//! let topo = generate(&GtItmConfig::for_size(100, 42));
//! let net = MecNetwork::place(topo, &PlacementConfig::default());
//! assert_eq!(net.cloudlet_count(), 10);
//! assert_eq!(net.data_center_count(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod graph;
pub mod gtitm;
pub mod mec;
pub mod placement;
pub mod shortest_path;
pub mod stats;
pub mod waxman;
pub mod zoo;

pub use dot::{network_dot, topology_dot};
pub use graph::{Edge, EdgeId, Graph, NodeId};
pub use gtitm::{GtItmConfig, NodeKind, Topology};
pub use mec::{CloudletId, DataCenterId, MecNetwork, PlacementConfig};
pub use placement::{choose_sites, coverage_cost, PlacementStrategy};
pub use shortest_path::{dijkstra, DistanceMatrix, ShortestPaths};
pub use stats::{graph_stats, GraphStats};
pub use waxman::WaxmanConfig;
