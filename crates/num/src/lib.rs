//! Blessed floating-point comparison helpers.
//!
//! Raw `f64 ==`/`!=` comparisons are banned by `cargo xtask lint` (rule
//! `float-cmp`): most of them are latent bugs that only surface once pivot
//! ordering, summation order, or compiler flags change the last few ulps of
//! a value. Every float comparison in the workspace goes through this crate
//! instead, with an explicit tolerance chosen at the call site.
//!
//! Two idioms are supported:
//!
//! - predicates ([`approx_eq`], [`approx_ge`], [`approx_le`], [`approx_zero`])
//!   for branching in algorithm code, and
//! - [`assert_approx_eq!`] for tests, which reports both values and the
//!   tolerance on failure.
//!
//! An `eps` of `0.0` is legal and means *exact* comparison — useful for
//! degenerate-input guards (e.g. "is this capacity literally zero?") where an
//! exact check is the intended semantics. Routing those through this crate
//! keeps them visible and greppable.

#![forbid(unsafe_code)]

// lint: allow(float-cmp) — this crate *implements* the blessed helpers.

/// Returns `true` when `a` and `b` differ by at most `eps`.
///
/// Comparisons are absolute, not relative: the tolerance is an additive
/// margin, matching how the solvers in this workspace use their `EPS`
/// constants. Two infinities of the same sign compare equal; any comparison
/// involving NaN is `false`.
///
/// # Examples
///
/// ```
/// use mec_num::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!approx_eq(1.0, 1.1, 1e-12));
/// assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
/// assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        // Covers exact matches and equal infinities, where `a - b` is NaN.
        return true;
    }
    (a - b).abs() <= eps
}

/// Returns `true` when `a >= b - eps` (greater-or-equal within tolerance).
///
/// # Examples
///
/// ```
/// use mec_num::approx_ge;
///
/// assert!(approx_ge(1.0, 1.0 + 1e-13, 1e-12));
/// assert!(!approx_ge(1.0, 2.0, 1e-12));
/// ```
#[inline]
pub fn approx_ge(a: f64, b: f64, eps: f64) -> bool {
    a >= b - eps
}

/// Returns `true` when `a <= b + eps` (less-or-equal within tolerance).
///
/// # Examples
///
/// ```
/// use mec_num::approx_le;
///
/// assert!(approx_le(1.0 + 1e-13, 1.0, 1e-12));
/// assert!(!approx_le(2.0, 1.0, 1e-12));
/// ```
#[inline]
pub fn approx_le(a: f64, b: f64, eps: f64) -> bool {
    a <= b + eps
}

/// Returns `true` when `|x| <= eps`.
///
/// With `eps == 0.0` this is an exact zero test (matching both `0.0` and
/// `-0.0`), the blessed form of the old `x == 0.0` guards.
///
/// # Examples
///
/// ```
/// use mec_num::approx_zero;
///
/// assert!(approx_zero(0.0, 0.0));
/// assert!(approx_zero(-0.0, 0.0));
/// assert!(approx_zero(1e-15, 1e-12));
/// assert!(!approx_zero(1e-3, 1e-12));
/// ```
#[inline]
pub fn approx_zero(x: f64, eps: f64) -> bool {
    x.abs() <= eps
}

/// Asserts that two `f64` expressions are equal within a tolerance.
///
/// `assert_approx_eq!(a, b)` uses a default tolerance of `1e-9`;
/// `assert_approx_eq!(a, b, eps)` makes it explicit. On failure the message
/// shows both values, their difference, and the tolerance.
///
/// # Examples
///
/// ```
/// mec_num::assert_approx_eq!(0.1 + 0.2, 0.3);
/// mec_num::assert_approx_eq!(1.0, 1.0 + 1e-13, 1e-12);
/// ```
#[macro_export]
macro_rules! assert_approx_eq {
    ($a:expr, $b:expr $(,)?) => {
        $crate::assert_approx_eq!($a, $b, 1e-9)
    };
    ($a:expr, $b:expr, $eps:expr $(,)?) => {{
        let (a, b, eps): (f64, f64, f64) = ($a, $b, $eps);
        assert!(
            $crate::approx_eq(a, b, eps),
            "assert_approx_eq failed: `{}` = {a:?}, `{}` = {b:?}, |diff| = {:?} > eps = {eps:?}",
            stringify!($a),
            stringify!($b),
            (a - b).abs(),
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 5e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.0 + 2e-9, 1e-9));
    }

    #[test]
    fn eq_handles_infinities_and_nan() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(approx_eq(f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e300));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
        assert!(!approx_eq(f64::NAN, f64::NAN, f64::INFINITY));
    }

    #[test]
    fn ge_and_le_are_one_sided() {
        assert!(approx_ge(1.0, 1.0, 0.0));
        assert!(approx_ge(0.999_999_999_9, 1.0, 1e-9));
        assert!(!approx_ge(0.9, 1.0, 1e-9));
        assert!(approx_le(1.000_000_000_1, 1.0, 1e-9));
        assert!(!approx_le(1.1, 1.0, 1e-9));
    }

    #[test]
    fn zero_test_matches_signed_zero() {
        assert!(approx_zero(0.0, 0.0));
        assert!(approx_zero(-0.0, 0.0));
        assert!(!approx_zero(f64::MIN_POSITIVE, 0.0));
    }

    #[test]
    fn assert_macro_passes_on_equal() {
        assert_approx_eq!(2.0, 2.0);
        assert_approx_eq!(2.0, 2.0 + 1e-12, 1e-9);
    }

    #[test]
    #[should_panic(expected = "assert_approx_eq failed")]
    fn assert_macro_panics_on_gap() {
        assert_approx_eq!(1.0, 2.0, 1e-9);
    }
}
