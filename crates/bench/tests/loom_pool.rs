//! Concurrency analysis of the parallel substrate, run under the loom
//! stand-in's schedule perturbation (`--features loom-model`).
//!
//! Two shared-state mechanisms carry every parallel code path in this
//! workspace, and both are exercised here across many perturbed
//! schedules (the TSan CI job additionally watches these same tests for
//! data races at the memory-access level):
//!
//! * the worker pool's atomic index counter (`parallel_map`): each item
//!   must be claimed by **exactly one** worker and results must come
//!   back in input order, no matter how the claims interleave;
//! * the chunk-merge of the parallel `MaxGain` / `is_nash` scans: the
//!   merged verdict must be identical for every worker count — the
//!   dynamics are deterministic by construction, not by scheduling luck.
#![cfg(feature = "loom-model")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mec_bench::parallel_map;
use mec_core::game::{is_nash_state_workers, scan_best_move_workers};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::state::GameState;
use mec_core::{Placement, Profile, ProviderId};
use mec_topology::CloudletId;

/// The pool's shared counter claims each index exactly once: no lost
/// items, no double-processing, input order preserved.
#[test]
fn pool_counter_claims_each_index_exactly_once() {
    loom::model(|| {
        const N: usize = 48;
        let items: Vec<usize> = (0..N).collect();
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        let h = Arc::clone(&hits);
        let out = parallel_map(&items, move |&k| {
            h[k].fetch_add(1, Ordering::SeqCst);
            k * 3
        });
        assert_eq!(out, (0..N).map(|k| k * 3).collect::<Vec<_>>());
        for (k, hit) in hits.iter().enumerate() {
            assert_eq!(
                hit.load(Ordering::SeqCst),
                1,
                "item {k} claimed twice or never"
            );
        }
    });
}

/// Workers racing on an empty queue (more workers than items) must not
/// duplicate or drop the few items there are.
#[test]
fn pool_with_more_workers_than_items() {
    loom::model(|| {
        let items = vec![7usize, 11];
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out, vec![8, 12]);
    });
}

fn crowded_market() -> (Market, Profile) {
    // Three cloudlets with distinct prices, ten providers crowded onto the
    // most expensive one: many competing improving moves exist, so the
    // max-gain merge has real ties and ordering decisions to make.
    let mut b = Market::builder()
        .cloudlet(CloudletSpec::new(40.0, 200.0, 1.0, 1.0))
        .cloudlet(CloudletSpec::new(40.0, 200.0, 0.4, 0.4))
        .cloudlet(CloudletSpec::new(40.0, 200.0, 0.2, 0.3));
    for k in 0..10 {
        b = b.provider(ProviderSpec::new(1.0, 5.0, 0.5 + 0.1 * k as f64, 50.0));
    }
    let m = b.uniform_update_cost(0.1).build();
    let p = Profile::new(vec![Placement::Cloudlet(CloudletId(0)); 10]);
    (m, p)
}

/// The parallel `MaxGain` scan merges chunk partials into the same move
/// the sequential scan picks, for every worker count, on every schedule.
#[test]
fn max_gain_chunk_merge_is_deterministic() {
    loom::model(|| {
        let (market, profile) = crowded_market();
        let state = GameState::new(&market, profile);
        let movable = vec![true; 10];
        let sequential = scan_best_move_workers(&state, &movable, 1);
        assert!(sequential.is_some(), "crowded market must have a move");
        for workers in 2..=8 {
            assert_eq!(
                scan_best_move_workers(&state, &movable, workers),
                sequential,
                "merge diverged at {workers} workers"
            );
        }
    });
}

/// The parallel `is_nash` fan-out agrees with the sequential check for
/// every worker count, on unstable and stable profiles alike.
#[test]
fn parallel_nash_check_is_deterministic() {
    loom::model(|| {
        let (market, profile) = crowded_market();
        let movable = vec![true; 10];
        let unstable = GameState::new(&market, profile);
        for workers in 1..=8 {
            assert!(!is_nash_state_workers(&unstable, &movable, workers));
        }
        // Pin every provider: trivially stable regardless of fan-out.
        let (market2, profile2) = crowded_market();
        let stable = GameState::new(&market2, profile2);
        let pinned = vec![false; 10];
        for workers in 1..=8 {
            assert!(is_nash_state_workers(&stable, &pinned, workers));
        }
    });
}

/// A provider whose best response lands mid-chunk: the winning move must
/// be the earliest maximum, mirroring the sequential first-max rule.
#[test]
fn chunk_merge_prefers_earliest_maximum_on_ties() {
    loom::model(|| {
        // Two identical providers with identical gains: the merge must
        // pick provider 0 (earliest id) for every worker split.
        let m = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 1.0, 1.0))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.1, 0.1))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .provider(ProviderSpec::new(1.0, 5.0, 1.0, 100.0))
            .uniform_update_cost(0.0)
            .build();
        let p = Profile::new(vec![Placement::Cloudlet(CloudletId(0)); 2]);
        let state = GameState::new(&m, p);
        let movable = vec![true, true];
        for workers in 1..=4 {
            let best = scan_best_move_workers(&state, &movable, workers);
            match best {
                Some((l, _, _)) => assert_eq!(l, ProviderId(0), "at {workers} workers"),
                None => panic!("tie market must have an improving move"),
            }
        }
    });
}
