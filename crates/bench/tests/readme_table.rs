//! Keeps README.md's performance table in lockstep with the checked-in
//! `BENCH_appro.json` artifact: the README text must contain, verbatim,
//! the markdown that `mec_bench::table::appro_perf_markdown` renders
//! from the artifact. Regenerate the README block with
//! `cargo run -p mec-bench --bin sweepbench -- table`.

use mec_bench::table::{appro_perf_markdown, parse_appro_bench};

const BENCH_APPRO: &str = include_str!("../../../BENCH_appro.json");
const README: &str = include_str!("../../../README.md");

#[test]
fn readme_perf_table_matches_bench_artifact() {
    let rows = parse_appro_bench(BENCH_APPRO);
    assert!(
        rows.len() >= 3,
        "BENCH_appro.json lost its grid: {} row(s) parsed",
        rows.len()
    );
    let table = appro_perf_markdown(&rows);
    assert!(
        README.contains(&table),
        "README.md performance table is out of sync with BENCH_appro.json.\n\
         Replace the README table with this canonical rendering\n\
         (`cargo run -p mec-bench --bin sweepbench -- table`):\n\n{table}"
    );
}

#[test]
fn artifact_rows_are_internally_consistent() {
    for r in parse_appro_bench(BENCH_APPRO) {
        let recomputed = r.dense_seconds / r.revised_seconds;
        assert!(
            (recomputed - r.speedup_revised).abs() / r.speedup_revised < 0.01,
            "recorded revised speedup {} disagrees with timings ({recomputed:.2}) \
             at {} × {}",
            r.speedup_revised,
            r.providers,
            r.cloudlets
        );
        let recomputed = r.dense_seconds / r.transportation_seconds;
        assert!(
            (recomputed - r.speedup_transportation).abs() / r.speedup_transportation < 0.01,
            "recorded transportation speedup {} disagrees with timings ({recomputed:.2}) \
             at {} × {}",
            r.speedup_transportation,
            r.providers,
            r.cloudlets
        );
    }
}
