//! Recompute vs incremental best-response dynamics.
//!
//! `run_reference` is the seed implementation (congestion/residuals
//! recomputed from scratch for every candidate evaluation, profile cloned
//! once per round); `run` drives the same moves through the incremental
//! `GameState`. Both converge to identical equilibria — these benchmarks
//! measure only the sweep machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mec_core::game::{best_response, BestResponseDynamics, MoveOrder};
use mec_core::state::GameState;
use mec_core::{Profile, ProviderId};
use mec_workload::{gtitm_scenario, Params, Scenario};

fn scenario(providers: usize) -> Scenario {
    gtitm_scenario(200, &Params::paper().with_providers(providers), 42)
}

fn bench_sweep_recompute_vs_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamics_sweep");
    g.sample_size(10);
    for providers in [60usize, 150, 300] {
        let s = scenario(providers);
        let market = &s.generated.market;
        let movable = vec![true; market.provider_count()];
        g.bench_with_input(
            BenchmarkId::new("recompute", providers),
            &(market, &movable),
            |b, (market, movable)| {
                b.iter(|| {
                    let mut profile = Profile::all_remote(market.provider_count());
                    BestResponseDynamics::new(MoveOrder::RoundRobin).run_reference(
                        black_box(market),
                        &mut profile,
                        movable,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("incremental", providers),
            &(market, &movable),
            |b, (market, movable)| {
                b.iter(|| {
                    let mut profile = Profile::all_remote(market.provider_count());
                    BestResponseDynamics::new(MoveOrder::RoundRobin).run(
                        black_box(market),
                        &mut profile,
                        movable,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_single_best_response(c: &mut Criterion) {
    // One best-response query at an equilibrium profile: the reference path
    // pays O(N+M) plus three allocations, the state path O(M) and none.
    let s = scenario(300);
    let market = &s.generated.market;
    let movable = vec![true; market.provider_count()];
    let mut profile = Profile::all_remote(market.provider_count());
    BestResponseDynamics::new(MoveOrder::RoundRobin).run(market, &mut profile, &movable);
    let state = GameState::new(market, profile.clone());
    let probe = ProviderId(market.provider_count() / 2);

    let mut g = c.benchmark_group("single_best_response");
    g.bench_function("recompute", |b| {
        b.iter(|| best_response(black_box(market), black_box(&profile), probe))
    });
    g.bench_function("incremental", |b| {
        b.iter(|| black_box(&state).best_response(probe))
    });
    g.finish();
}

fn bench_max_gain(c: &mut Criterion) {
    let s = scenario(150);
    let market = &s.generated.market;
    let movable = vec![true; market.provider_count()];
    let mut g = c.benchmark_group("dynamics_max_gain");
    g.sample_size(10);
    g.bench_function("recompute", |b| {
        b.iter(|| {
            let mut profile = Profile::all_remote(market.provider_count());
            BestResponseDynamics::new(MoveOrder::MaxGain).run_reference(
                black_box(market),
                &mut profile,
                &movable,
            )
        })
    });
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut profile = Profile::all_remote(market.provider_count());
            BestResponseDynamics::new(MoveOrder::MaxGain).run(
                black_box(market),
                &mut profile,
                &movable,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sweep_recompute_vs_incremental,
    bench_single_best_response,
    bench_max_gain
);
criterion_main!(benches);
