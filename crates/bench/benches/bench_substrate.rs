//! Criterion benchmarks of the substrates: shortest paths, min-cost flow,
//! the simplex, topology generation and the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mec_gap::flow::MinCostFlow;
use mec_lp::{LpBuilder, Relation};
use mec_sim::{nearest_cloudlet_profile, simulate, SimConfig};
use mec_topology::gtitm::{generate as gen_ts, GtItmConfig};
use mec_topology::shortest_path::DistanceMatrix;
use mec_workload::{gtitm_scenario, Params};

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    for size in [100usize, 250, 400] {
        g.bench_with_input(
            BenchmarkId::new("gtitm_generate", size),
            &size,
            |b, &size| b.iter(|| gen_ts(&GtItmConfig::for_size(black_box(size), 42))),
        );
        let topo = gen_ts(&GtItmConfig::for_size(size, 42));
        g.bench_with_input(
            BenchmarkId::new("all_pairs_dijkstra", size),
            &topo,
            |b, topo| b.iter(|| DistanceMatrix::new(black_box(&topo.graph))),
        );
    }
    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("min_cost_flow");
    g.sample_size(10);
    for n in [20usize, 60, 120] {
        g.bench_with_input(BenchmarkId::new("bipartite_assignment", n), &n, |b, &n| {
            b.iter(|| {
                let (s, t) = (2 * n, 2 * n + 1);
                let mut f = MinCostFlow::new(2 * n + 2);
                for i in 0..n {
                    f.add_edge(s, i, 1.0, 0.0);
                    f.add_edge(n + i, t, 1.0, 0.0);
                    for j in 0..n {
                        let cost = ((i * 31 + j * 17) % 97) as f64 + 1.0;
                        f.add_edge(i, n + j, 1.0, cost);
                    }
                }
                f.run(s, t, n as f64)
            })
        });
    }
    g.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    g.sample_size(10);
    for n in [10usize, 30, 60] {
        g.bench_with_input(BenchmarkId::new("box_lp", n), &n, |b, &n| {
            b.iter(|| {
                let mut lp = LpBuilder::new(n);
                let c: Vec<f64> = (0..n).map(|k| -((k % 7) as f64 + 1.0)).collect();
                lp.objective(&c);
                // A dense packing row plus unit boxes.
                let row: Vec<f64> = (0..n).map(|k| 1.0 + (k % 3) as f64).collect();
                lp.constraint(&row, Relation::Le, n as f64);
                for k in 0..n {
                    let mut e = vec![0.0; n];
                    e[k] = 1.0;
                    lp.constraint(&e, Relation::Le, 1.0);
                }
                lp.solve().unwrap()
            })
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let s = gtitm_scenario(150, &Params::paper().with_providers(40), 42);
    let profile = nearest_cloudlet_profile(&s.net, &s.generated);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("replay_40_providers", |b| {
        b.iter(|| {
            simulate(
                black_box(&s.net),
                &s.generated,
                &profile,
                &SimConfig::default(),
            )
        })
    });
    g.bench_function("replay_with_contention", |b| {
        b.iter(|| {
            simulate(
                black_box(&s.net),
                &s.generated,
                &profile,
                &SimConfig {
                    access_link_contention: true,
                    ..SimConfig::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_topology,
    bench_flow,
    bench_simplex,
    bench_simulator
);
criterion_main!(benches);
