//! Criterion micro-benchmarks of the mechanism hot paths: the `Appro`
//! approximation, the full LCF Stackelberg run, the best-response
//! dynamics, and both baselines (the running-time panels of Figs. 2d/3d/5b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::appro::{appro, ApproConfig};
use mec_core::game::{BestResponseDynamics, MoveOrder};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::Profile;
use mec_workload::{gtitm_scenario, Params, Scenario};

fn scenario(size: usize) -> Scenario {
    gtitm_scenario(size, &Params::paper().with_providers(60), 42)
}

fn bench_appro(c: &mut Criterion) {
    let mut g = c.benchmark_group("appro");
    g.sample_size(10);
    for size in [50usize, 150, 250] {
        let s = scenario(size);
        g.bench_with_input(BenchmarkId::from_parameter(size), &s, |b, s| {
            b.iter(|| appro(black_box(&s.generated.market), &ApproConfig::new()).unwrap())
        });
    }
    g.finish();
}

fn bench_lcf(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcf");
    g.sample_size(10);
    for size in [50usize, 150, 250] {
        let s = scenario(size);
        g.bench_with_input(BenchmarkId::from_parameter(size), &s, |b, s| {
            b.iter(|| lcf(black_box(&s.generated.market), &LcfConfig::new(0.7)).unwrap())
        });
    }
    g.finish();
}

fn bench_best_response(c: &mut Criterion) {
    let s = scenario(150);
    let market = &s.generated.market;
    let movable = vec![true; market.provider_count()];
    c.bench_function("best_response_dynamics_from_remote", |b| {
        b.iter(|| {
            let mut profile = Profile::all_remote(market.provider_count());
            BestResponseDynamics::new(MoveOrder::RoundRobin).run(
                black_box(market),
                &mut profile,
                &movable,
            )
        })
    });
}

fn bench_baselines(c: &mut Criterion) {
    let s = scenario(150);
    c.bench_function("jo_offload_cache", |b| {
        b.iter(|| jo_offload_cache(black_box(&s.generated), &JoConfig::default()))
    });
    c.bench_function("offload_cache", |b| {
        b.iter(|| offload_cache(black_box(&s.generated)))
    });
}

criterion_group!(
    benches,
    bench_appro,
    bench_lcf,
    bench_best_response,
    bench_baselines
);
criterion_main!(benches);
