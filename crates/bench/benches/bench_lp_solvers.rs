//! Criterion benchmarks of the LP solver backends on GAP relaxations:
//! dense tableau vs sparse revised simplex vs the transportation fast
//! path (on instances where it applies).
//!
//! The end-to-end Appro sweep that produces `BENCH_appro.json` lives in
//! the `sweepbench` binary; this bench isolates the LP solve itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mec_gap::{lp_relax, GapInstance};
use mec_lp::SolverBackend;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random feasible GAP instance with per-item weights that vary across
/// bins — exercises the general LP path (transportation inapplicable).
fn random_instance(items: usize, bins: usize, seed: u64) -> GapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = GapInstance::new(items, bins);
    for i in 0..items {
        for j in 0..bins {
            inst.set_weight(i, j, rng.random_range(0.3..1.0));
            inst.set_cost(i, j, rng.random_range(0.5..10.0));
        }
    }
    // Feasible with slack ~1.6x.
    let per_bin = items as f64 * 0.65 / bins as f64 * 1.6 + 1.0;
    for j in 0..bins {
        inst.set_capacity(j, per_bin);
    }
    inst
}

/// Uniform-weight instance (one weight per item, identical across all
/// bins) so the transportation fast path qualifies alongside the LPs.
fn uniform_instance(items: usize, bins: usize, seed: u64) -> GapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = GapInstance::new(items, bins);
    for i in 0..items {
        inst.set_item_weight(i, 1.0);
        for j in 0..bins {
            inst.set_cost(i, j, rng.random_range(0.5..10.0));
        }
    }
    let per_bin = (items as f64 / bins as f64 * 1.6).ceil() + 1.0;
    for j in 0..bins {
        inst.set_capacity(j, per_bin);
    }
    inst
}

fn bench_general_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solvers");
    g.sample_size(10);
    for (items, bins) in [(40usize, 16usize), (80, 32), (160, 48)] {
        let inst = random_instance(items, bins, 7);
        g.bench_with_input(
            BenchmarkId::new("dense", format!("{items}x{bins}")),
            &inst,
            |b, inst| {
                b.iter(|| lp_relax::solve_lp_with(black_box(inst), SolverBackend::Dense).unwrap())
            },
        );
        g.bench_with_input(
            BenchmarkId::new("revised", format!("{items}x{bins}")),
            &inst,
            |b, inst| {
                b.iter(|| lp_relax::solve_lp_with(black_box(inst), SolverBackend::Revised).unwrap())
            },
        );
    }
    g.finish();
}

fn bench_uniform_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solvers_uniform");
    g.sample_size(10);
    for (items, bins) in [(40usize, 16usize), (120, 24)] {
        let inst = uniform_instance(items, bins, 11);
        assert!(inst.has_uniform_allowed_weights());
        g.bench_with_input(
            BenchmarkId::new("dense", format!("{items}x{bins}")),
            &inst,
            |b, inst| {
                b.iter(|| lp_relax::solve_lp_with(black_box(inst), SolverBackend::Dense).unwrap())
            },
        );
        g.bench_with_input(
            BenchmarkId::new("revised", format!("{items}x{bins}")),
            &inst,
            |b, inst| {
                b.iter(|| lp_relax::solve_lp_with(black_box(inst), SolverBackend::Revised).unwrap())
            },
        );
        g.bench_with_input(
            BenchmarkId::new("transportation", format!("{items}x{bins}")),
            &inst,
            |b, inst| b.iter(|| lp_relax::solve_transportation(black_box(inst)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_general_lp, bench_uniform_lp);
criterion_main!(benches);
