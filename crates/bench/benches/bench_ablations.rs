//! Criterion benchmarks for the DESIGN.md ablations: what each design
//! choice costs in wall-clock time (their quality impact is measured by
//! the `ablations` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mec_core::appro::{appro, ApproConfig, SlotPricing, SplitMode};
use mec_core::game::MoveOrder;
use mec_core::lcf::{lcf, LcfConfig, SelectionRule};
use mec_gap::LpBackend;
use mec_workload::{gtitm_scenario, Params, Scenario};

fn scenario() -> Scenario {
    gtitm_scenario(150, &Params::paper().with_providers(60), 42)
}

fn bench_pricing(c: &mut Criterion) {
    let s = scenario();
    let m = &s.generated.market;
    let mut g = c.benchmark_group("appro_pricing");
    g.sample_size(10);
    g.bench_function("marginal", |b| {
        b.iter(|| appro(black_box(m), &ApproConfig::new()).unwrap())
    });
    g.bench_function("flat_merged", |b| {
        b.iter(|| appro(black_box(m), &ApproConfig::paper_flat()).unwrap())
    });
    g.bench_function("flat_per_slot", |b| {
        b.iter(|| {
            appro(
                black_box(m),
                &ApproConfig {
                    split: SplitMode::PerSlot,
                    pricing: SlotPricing::Flat,
                    repair_capacity: true,
                    polish: false,
                    lp_backend: LpBackend::Auto,
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_orders(c: &mut Criterion) {
    let s = scenario();
    let m = &s.generated.market;
    let mut g = c.benchmark_group("br_order");
    g.sample_size(10);
    g.bench_function("round_robin", |b| {
        b.iter(|| {
            lcf(
                black_box(m),
                &LcfConfig {
                    order: MoveOrder::RoundRobin,
                    ..LcfConfig::new(0.3)
                },
            )
            .unwrap()
        })
    });
    g.bench_function("max_gain", |b| {
        b.iter(|| {
            lcf(
                black_box(m),
                &LcfConfig {
                    order: MoveOrder::MaxGain,
                    ..LcfConfig::new(0.3)
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let s = scenario();
    let m = &s.generated.market;
    let mut g = c.benchmark_group("selection_rule");
    g.sample_size(10);
    for (name, rule) in [
        ("largest_cost_first", SelectionRule::LargestCostFirst),
        ("smallest_cost_first", SelectionRule::SmallestCostFirst),
        ("random", SelectionRule::Random(7)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                lcf(
                    black_box(m),
                    &LcfConfig {
                        selection: rule,
                        ..LcfConfig::new(0.7)
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use mec_core::congestion::{CongestionModel, GeneralizedGame};
    use mec_core::weighted::WeightedGame;
    use mec_core::Profile;
    let s = scenario();
    let m = &s.generated.market;
    let mut g = c.benchmark_group("extension_games");
    g.sample_size(10);
    g.bench_function("generalized_mm1_dynamics", |b| {
        b.iter(|| {
            let game = GeneralizedGame::new(black_box(m), CongestionModel::Mm1 { capacity: 12 });
            let mut p = Profile::all_remote(m.provider_count());
            game.run_dynamics(&mut p, 10_000)
        })
    });
    g.bench_function("weighted_dynamics", |b| {
        b.iter(|| {
            let game = WeightedGame::new(black_box(m));
            let mut p = Profile::all_remote(m.provider_count());
            game.run_dynamics(&mut p, 10_000)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pricing,
    bench_orders,
    bench_selection,
    bench_extensions
);
criterion_main!(benches);
