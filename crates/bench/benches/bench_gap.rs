//! Criterion benchmarks of the GAP substrate: LP relaxation (simplex) vs
//! the transportation fast path, and the full Shmoys–Tardos pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mec_gap::{greedy, lp_relax, shmoys_tardos, GapInstance};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_instance(items: usize, bins: usize, seed: u64) -> GapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = GapInstance::new(items, bins);
    for i in 0..items {
        inst.set_item_weight(i, rng.random_range(0.3..1.0));
        for j in 0..bins {
            inst.set_cost(i, j, rng.random_range(0.5..10.0));
        }
    }
    // Feasible with slack ~1.6x.
    let per_bin = items as f64 * 0.65 / bins as f64 * 1.6 + 1.0;
    for j in 0..bins {
        inst.set_capacity(j, per_bin);
    }
    inst
}

fn bench_relaxations(c: &mut Criterion) {
    let mut g = c.benchmark_group("gap_relaxation");
    g.sample_size(10);
    for (items, bins) in [(20usize, 8usize), (40, 16), (80, 32)] {
        let inst = random_instance(items, bins, 7);
        g.bench_with_input(
            BenchmarkId::new("simplex_lp", format!("{items}x{bins}")),
            &inst,
            |b, inst| b.iter(|| lp_relax::solve_lp(black_box(inst)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("transportation", format!("{items}x{bins}")),
            &inst,
            |b, inst| b.iter(|| lp_relax::solve_transportation(black_box(inst)).unwrap()),
        );
    }
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("gap_solvers");
    g.sample_size(10);
    for (items, bins) in [(40usize, 16usize), (100, 40)] {
        let inst = random_instance(items, bins, 11);
        g.bench_with_input(
            BenchmarkId::new("shmoys_tardos", format!("{items}x{bins}")),
            &inst,
            |b, inst| b.iter(|| shmoys_tardos::solve(black_box(inst)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("greedy", format!("{items}x{bins}")),
            &inst,
            |b, inst| b.iter(|| greedy::solve(black_box(inst))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_relaxations, bench_full_pipeline);
criterion_main!(benches);
