//! Benchmark harness regenerating every figure of the paper's evaluation.
//!
//! * [`table`] — plain-text result tables with shape-assertion helpers,
//! * [`experiments`] — one runner per figure (Figs. 2, 3, 5, 6, 7),
//! * [`ablation`] — the DESIGN.md ablations (slot pricing, selection rule,
//!   opt-out, best-response order).
//!
//! Binaries (`cargo run -p mec-bench --release --bin figN`) print the
//! tables; `cargo bench -p mec-bench` runs the Criterion micro-benchmarks
//! of the algorithm hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
pub mod parallel;
pub mod table;

pub use experiments::{fig2, fig3, fig5, fig6, fig7, RunConfig};
pub use parallel::parallel_map;
pub use table::Table;

/// Prints tables to stdout, exiting quietly (status 0) when the reader
/// closes the pipe early (e.g. `fig2 | head`).
pub fn print_tables(tables: &[Table]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for t in tables {
        if writeln!(out, "{t}").is_err() {
            std::process::exit(0);
        }
    }
}

/// Parses a `--quick` flag from the process arguments (used by every fig
/// binary to run a reduced sweep in CI).
pub fn run_config_from_args() -> RunConfig {
    if std::env::args().any(|a| a == "--quick") {
        RunConfig::quick()
    } else {
        RunConfig::default()
    }
}
