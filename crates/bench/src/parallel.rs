//! Scoped-thread fan-out for the figure sweeps.
//!
//! Every point of a sweep (a network size, a `(1−ξ)` value, a seed) is an
//! independent deterministic computation, so the runners fan them out over
//! scoped threads. Sweeps stay reproducible: results are returned in input
//! order regardless of completion order.

/// Maps `f` over `items` in parallel (one scoped thread per item) and
/// returns the results in input order.
///
/// Intended for coarse work units (hundreds of milliseconds each); the
/// figure sweeps produce at most a few dozen items.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| scope.spawn(|_| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(&items, |&x| {
            // Stagger completion so order would scramble without joins.
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x * 2
        });
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(&[1u8], |_| panic!("boom"));
    }
}
