//! Scoped-thread fan-out for the figure sweeps.
//!
//! Every point of a sweep (a network size, a `(1−ξ)` value, a seed) is an
//! independent deterministic computation, so the runners fan them out over
//! a bounded pool of scoped worker threads. Sweeps stay reproducible:
//! results are returned in input order regardless of completion order.

// Under `--features loom-model` the shared counter runs on the loom
// stand-in's schedule-perturbing atomics, so the concurrency stress tests
// (tests/loom_pool.rs) push the workers through many interleavings.
#[cfg(feature = "loom-model")]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "loom-model"))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` in parallel and returns the results in input order.
///
/// Spawns `min(items.len(), available_parallelism())` scoped workers that
/// pull item indices from a shared counter — large sweeps no longer spawn
/// one thread per item, and uneven work units balance automatically.
///
/// Intended for coarse work units (hundreds of milliseconds each).
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(items.len());
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut results: Vec<Option<R>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    // Each worker claims the next unprocessed index until the
                    // items run out, returning (index, result) pairs.
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            return out;
                        }
                        out.push((k, f(&items[k])));
                    }
                })
            })
            .collect();
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for h in handles {
            for (k, r) in h.join().expect("sweep worker panicked") {
                results[k] = Some(r);
            }
        }
        results
    })
    .expect("crossbeam scope failed");
    results
        .iter_mut()
        .map(|slot| slot.take().expect("sweep item not processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(&items, |&x| {
            // Stagger completion so order would scramble without joins.
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x * 2
        });
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(&[1u8], |_| panic!("boom"));
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn late_panic_propagates_with_many_items() {
        // The panicking item sits deep in the queue, past the first batch
        // any worker claims.
        let items: Vec<u32> = (0..500).collect();
        let _ = parallel_map(&items, |&x| {
            assert!(x != 437, "boom");
            x
        });
    }

    #[test]
    fn items_far_exceeding_cores() {
        // Far more items than any machine has cores: the pool must stay
        // bounded while every item is still processed exactly once, in order.
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out.len(), items.len());
        for (k, v) in out.iter().enumerate() {
            assert_eq!(*v, (k * k) as u64);
        }
    }

    #[test]
    fn uneven_work_units_balance() {
        // A few heavy items mixed into many light ones; order still holds.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            if x % 13 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[41u32], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }
}
