//! Experiment runners: one function per paper figure.
//!
//! Every function regenerates the series of one figure as [`Table`]s —
//! same x-axis, same algorithms, same metrics as the paper — averaged over
//! the configured seeds. The `fig*` binaries print them; integration tests
//! assert the qualitative shapes recorded in EXPERIMENTS.md.

use std::time::Instant;

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::ProviderId;
use mec_testbed::{ControllerApp, JoOffloadCacheApp, LcfApp, OffloadCacheApp, Testbed};
use mec_workload::{gtitm_scenario, Params, Scenario, FIG2_SIZES, FIG3_SIZE, SELFISH_FRACTIONS};

use crate::table::Table;

/// Shared configuration of the figure runners.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Providers in the market (paper: 100).
    pub providers: usize,
    /// Default selfish fraction `(1 − ξ)` (paper: 0.3).
    pub selfish_fraction: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seeds: vec![1, 2, 3],
            providers: 100,
            selfish_fraction: 0.3,
        }
    }
}

impl RunConfig {
    /// A fast configuration for CI / smoke tests: one seed, fewer
    /// providers.
    pub fn quick() -> Self {
        RunConfig {
            seeds: vec![1],
            providers: 40,
            selfish_fraction: 0.3,
        }
    }
}

/// Per-algorithm metrics of one run.
#[derive(Debug, Clone, Copy, Default)]
struct Metrics {
    social: f64,
    selfish: f64,
    coordinated: f64,
    millis: f64,
}

/// Runs the three algorithms on one scenario. Baseline profiles are split
/// into "coordinated"/"selfish" provider subsets using LCF's partition so
/// Figs. 2(b)–(c) compare the same provider groups across algorithms.
fn run_all(scenario: &Scenario, selfish_fraction: f64) -> [Metrics; 3] {
    let market = &scenario.generated.market;
    let xi = 1.0 - selfish_fraction;

    let t0 = Instant::now();
    let lcf_out = lcf(market, &LcfConfig::new(xi)).expect("LCF failed");
    let lcf_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let coordinated = lcf_out.coordinated.clone();
    let selfish: Vec<ProviderId> = market
        .providers()
        .filter(|l| !coordinated.contains(l))
        .collect();

    let t1 = Instant::now();
    let jo = jo_offload_cache(&scenario.generated, &JoConfig::default());
    let jo_ms = t1.elapsed().as_secs_f64() * 1000.0;

    let t2 = Instant::now();
    let off = offload_cache(&scenario.generated);
    let off_ms = t2.elapsed().as_secs_f64() * 1000.0;

    let m = |profile: &mec_core::Profile, ms: f64| Metrics {
        social: profile.social_cost(market),
        selfish: profile.subset_cost(market, selfish.iter().copied()),
        coordinated: profile.subset_cost(market, coordinated.iter().copied()),
        millis: ms,
    };
    [
        m(&lcf_out.profile, lcf_ms),
        m(&jo.profile, jo_ms),
        m(&off.profile, off_ms),
    ]
}

fn average<I: IntoIterator<Item = [Metrics; 3]>>(runs: I) -> [Metrics; 3] {
    let mut acc = [Metrics::default(); 3];
    let mut count = 0.0;
    for r in runs {
        for (a, b) in acc.iter_mut().zip(r.iter()) {
            a.social += b.social;
            a.selfish += b.selfish;
            a.coordinated += b.coordinated;
            a.millis += b.millis;
        }
        count += 1.0;
    }
    for a in &mut acc {
        a.social /= count;
        a.selfish /= count;
        a.coordinated /= count;
        a.millis /= count;
    }
    acc
}

const ALGOS: [&str; 3] = ["LCF", "JoOffloadCache", "OffloadCache"];

fn four_panel(prefix: &str, x_label: &str, points: &[(f64, [Metrics; 3])]) -> Vec<Table> {
    let mut social = Table::new(&format!("{prefix}(a) social cost"), x_label, &ALGOS);
    let mut selfish = Table::new(
        &format!("{prefix}(b) cost of the selfish network service providers"),
        x_label,
        &ALGOS,
    );
    let mut coord = Table::new(
        &format!("{prefix}(c) cost of the coordinated network service providers"),
        x_label,
        &ALGOS,
    );
    let mut time = Table::new(&format!("{prefix}(d) running times (ms)"), x_label, &ALGOS);
    for (x, m) in points {
        social.row(*x, &[m[0].social, m[1].social, m[2].social]);
        selfish.row(*x, &[m[0].selfish, m[1].selfish, m[2].selfish]);
        coord.row(*x, &[m[0].coordinated, m[1].coordinated, m[2].coordinated]);
        time.row(*x, &[m[0].millis, m[1].millis, m[2].millis]);
    }
    vec![social, selfish, coord, time]
}

/// **Fig. 2** — GT-ITM networks, size 50–400, 100 providers, `(1−ξ)=0.3`:
/// social cost, selfish-provider cost, coordinated-provider cost, runtime.
pub fn fig2(cfg: &RunConfig) -> Vec<Table> {
    let metrics = crate::parallel::parallel_map(FIG2_SIZES, |&size| {
        let runs = cfg.seeds.iter().map(|&seed| {
            let s = gtitm_scenario(size, &Params::paper().with_providers(cfg.providers), seed);
            run_all(&s, cfg.selfish_fraction)
        });
        average(runs)
    });
    let points: Vec<(f64, [Metrics; 3])> =
        FIG2_SIZES.iter().map(|&s| s as f64).zip(metrics).collect();
    four_panel("Fig. 2", "network size", &points)
}

/// **Fig. 3** — GT-ITM network of size 250, sweeping `(1−ξ)` from 0 to 1.
pub fn fig3(cfg: &RunConfig) -> Vec<Table> {
    let metrics = crate::parallel::parallel_map(SELFISH_FRACTIONS, |&frac| {
        let runs = cfg.seeds.iter().map(|&seed| {
            let s = gtitm_scenario(
                FIG3_SIZE,
                &Params::paper().with_providers(cfg.providers),
                seed,
            );
            run_all(&s, frac)
        });
        average(runs)
    });
    let points: Vec<(f64, [Metrics; 3])> = SELFISH_FRACTIONS.iter().copied().zip(metrics).collect();
    four_panel("Fig. 3", "1 - xi (selfish fraction)", &points)
}

fn testbed_apps(selfish_fraction: f64) -> Vec<Box<dyn ControllerApp>> {
    vec![
        Box::new(LcfApp {
            config: LcfConfig::new(1.0 - selfish_fraction),
        }),
        Box::new(JoOffloadCacheApp::default()),
        Box::new(OffloadCacheApp),
    ]
}

fn testbed_point(params: &Params, seeds: &[u64], selfish_fraction: f64) -> ([f64; 3], [f64; 3]) {
    let mut social = [0.0; 3];
    let mut millis = [0.0; 3];
    for &seed in seeds {
        let tb = Testbed::new(params, seed);
        for (k, app) in testbed_apps(selfish_fraction).iter().enumerate() {
            let rep = tb.run(app.as_ref()).expect("testbed run failed");
            social[k] += rep.social_cost / seeds.len() as f64;
            millis[k] += rep.running_time.as_secs_f64() * 1000.0 / seeds.len() as f64;
        }
    }
    (social, millis)
}

/// **Fig. 5** — testbed (AS1755 overlay), `(1−ξ)=0.3`: social cost and
/// running time as the number of service-caching requests grows.
pub fn fig5(cfg: &RunConfig) -> Vec<Table> {
    let mut social = Table::new("Fig. 5(a) social cost (testbed)", "providers", &ALGOS);
    let mut time = Table::new("Fig. 5(b) running times (ms, testbed)", "providers", &ALGOS);
    for providers in [20, 40, 60, 80, 100] {
        let params = Params::paper().with_providers(providers);
        let (s, t) = testbed_point(&params, &cfg.seeds, cfg.selfish_fraction);
        social.row(providers as f64, &s);
        time.row(providers as f64, &t);
    }
    vec![social, time]
}

/// **Fig. 6** — testbed parameter studies: (a) `(1−ξ)`, (c) number of
/// service-caching requests, (d) update-data volume.
pub fn fig6(cfg: &RunConfig) -> Vec<Table> {
    let mut a = Table::new(
        "Fig. 6(a) social cost vs (1 - xi) (testbed)",
        "1 - xi",
        &ALGOS,
    );
    for &frac in SELFISH_FRACTIONS {
        let params = Params::paper().with_providers(cfg.providers.min(60));
        let (s, _) = testbed_point(&params, &cfg.seeds, frac);
        a.row(frac, &s);
    }

    let mut c = Table::new(
        "Fig. 6(c) total cost vs number of service caching requests (testbed)",
        "requests",
        &ALGOS,
    );
    for providers in [20, 40, 60, 80, 100, 120] {
        let params = Params::paper().with_providers(providers);
        let (s, _) = testbed_point(&params, &cfg.seeds, cfg.selfish_fraction);
        c.row(providers as f64, &s);
    }

    let mut d = Table::new(
        "Fig. 6(d) total cost vs update-data volume (testbed)",
        "update ratio",
        &ALGOS,
    );
    for ratio in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let params = Params::paper()
            .with_providers(cfg.providers.min(60))
            .with_update_ratio(ratio);
        let (s, _) = testbed_point(&params, &cfg.seeds, cfg.selfish_fraction);
        d.row(ratio, &s);
    }
    vec![a, c, d]
}

/// **Fig. 7** — testbed: impact of the maximum computing demand `a_max`
/// and maximum bandwidth demand `b_max`.
pub fn fig7(cfg: &RunConfig) -> Vec<Table> {
    let mut a = Table::new(
        "Fig. 7(a) total cost vs a_max (testbed)",
        "a_max (VM units)",
        &ALGOS,
    );
    for a_max in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let params = Params::paper()
            .with_providers(cfg.providers.min(60))
            .with_max_service_vms(a_max);
        let (s, _) = testbed_point(&params, &cfg.seeds, cfg.selfish_fraction);
        a.row(a_max, &s);
    }

    let mut b = Table::new(
        "Fig. 7(b) total cost vs b_max scale (testbed)",
        "b_max scale",
        &ALGOS,
    );
    for scale in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let params = Params::paper()
            .with_providers(cfg.providers.min(60))
            .with_bandwidth_scale(scale);
        let (s, _) = testbed_point(&params, &cfg.seeds, cfg.selfish_fraction);
        b.row(scale, &s);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;

    #[test]
    fn fig2_quick_has_expected_shape() {
        let cfg = RunConfig {
            seeds: vec![1],
            providers: 30,
            selfish_fraction: 0.3,
        };
        // Only two sizes to keep the unit test fast.
        let s = gtitm_scenario(50, &Params::paper().with_providers(30), 1);
        let m = run_all(&s, 0.3);
        // LCF no worse than the baselines on social cost.
        assert!(m[0].social <= m[1].social + 1e-6);
        assert!(m[0].social <= m[2].social + 1e-6);
        let _ = cfg;
    }

    #[test]
    fn metrics_partition() {
        let s = gtitm_scenario(60, &Params::paper().with_providers(20), 2);
        let m = run_all(&s, 0.4);
        #[allow(clippy::needless_range_loop)] // k indexes the algorithm triple
        for k in 0..3 {
            assert!(
                (m[k].selfish + m[k].coordinated - m[k].social).abs() < 1e-6,
                "partition broken for algo {k}"
            );
        }
    }

    #[test]
    fn average_averages() {
        let a = [Metrics {
            social: 2.0,
            selfish: 1.0,
            coordinated: 1.0,
            millis: 10.0,
        }; 3];
        let b = [Metrics {
            social: 4.0,
            selfish: 2.0,
            coordinated: 2.0,
            millis: 30.0,
        }; 3];
        let avg = average([a, b]);
        assert_approx_eq!(avg[0].social, 3.0, 1e-12);
        assert_approx_eq!(avg[0].millis, 20.0, 1e-12);
    }
}
