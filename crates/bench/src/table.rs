//! Plain-text result tables, one per figure panel — plus the canonical
//! markdown rendering of the checked-in `BENCH_appro.json` sweep
//! ([`appro_perf_markdown`]), which README.md's performance table is
//! generated from.

use std::fmt;

/// A result table: an x-axis column plus one column per algorithm/series.
///
/// # Examples
///
/// ```
/// use mec_bench::table::Table;
///
/// let mut t = Table::new("Fig. X", "network size", &["LCF", "OffloadCache"]);
/// t.row(50.0, &[1.0, 2.0]);
/// let s = t.to_string();
/// assert!(s.contains("LCF"));
/// assert!(s.contains("50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column count.
    pub fn row(&mut self, x: f64, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width mismatches columns"
        );
        self.rows.push((x, values.to_vec()));
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column labels (excluding the x column).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Raw rows.
    pub fn rows(&self) -> &[(f64, Vec<f64>)] {
        &self.rows
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// `true` if column `col` is non-decreasing down the rows (within
    /// `tol` slack) — used by shape assertions in EXPERIMENTS.md tests.
    pub fn column_non_decreasing(&self, col: usize, tol: f64) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[1].1[col] >= w[0].1[col] - tol)
    }

    /// `true` if column `a` is pointwise ≤ column `b` (within `tol`).
    pub fn column_dominates(&self, a: usize, b: usize, tol: f64) -> bool {
        self.rows.iter().all(|(_, v)| v[a] <= v[b] + tol)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        write!(f, "{:>14}", self.x_label)?;
        for c in &self.columns {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (x, values) in &self.rows {
            write!(f, "{x:>14.2}")?;
            for v in values {
                write!(f, "{v:>16.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One grid cell of the Appro LP-backend sweep (`BENCH_appro.json`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproPerfRow {
    /// Provider count of the cell.
    pub providers: u64,
    /// Cloudlet count of the cell.
    pub cloudlets: u64,
    /// End-to-end `appro` wall clock, dense tableau backend.
    pub dense_seconds: f64,
    /// End-to-end `appro` wall clock, sparse revised simplex backend.
    pub revised_seconds: f64,
    /// End-to-end `appro` wall clock, transportation fast path.
    pub transportation_seconds: f64,
    /// `dense_seconds / revised_seconds` as recorded by the sweep.
    pub speedup_revised: f64,
    /// `dense_seconds / transportation_seconds` as recorded by the sweep.
    pub speedup_transportation: f64,
}

/// Extracts the per-cell timings from the pretty-printed
/// `BENCH_appro.json` artifact (one `"key": value` pair per line, as
/// `sweepbench -- appro` writes it). Unknown keys are ignored; a row is
/// emitted at each new `"providers"` key.
///
/// # Examples
///
/// ```
/// let json = include_str!("../../../BENCH_appro.json");
/// let rows = mec_bench::table::parse_appro_bench(json);
/// assert_eq!(rows.len(), 3);
/// assert!(rows.iter().all(|r| r.speedup_revised > 1.0));
/// ```
pub fn parse_appro_bench(json: &str) -> Vec<ApproPerfRow> {
    let mut rows: Vec<ApproPerfRow> = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if key == "providers" {
            rows.push(ApproPerfRow {
                providers: value.parse().unwrap_or(0),
                cloudlets: 0,
                dense_seconds: 0.0,
                revised_seconds: 0.0,
                transportation_seconds: 0.0,
                speedup_revised: 0.0,
                speedup_transportation: 0.0,
            });
            continue;
        }
        let Some(row) = rows.last_mut() else {
            continue;
        };
        match key {
            "cloudlets" => row.cloudlets = value.parse().unwrap_or(0),
            "dense_seconds" => row.dense_seconds = value.parse().unwrap_or(0.0),
            "revised_seconds" => row.revised_seconds = value.parse().unwrap_or(0.0),
            "transportation_seconds" => {
                row.transportation_seconds = value.parse().unwrap_or(0.0);
            }
            "speedup_revised_vs_dense" => {
                row.speedup_revised = value.parse().unwrap_or(0.0);
            }
            "speedup_transportation_vs_dense" => {
                row.speedup_transportation = value.parse().unwrap_or(0.0);
            }
            _ => {}
        }
    }
    rows
}

/// Wall-clock cell formatting of the canonical performance table:
/// precision tapers with magnitude so every cell carries two-to-three
/// significant digits.
fn fmt_secs(v: f64) -> String {
    if v < 0.1 {
        format!("{v:.3} s")
    } else if v < 10.0 {
        format!("{v:.2} s")
    } else if v < 100.0 {
        format!("{v:.1} s")
    } else {
        format!("{v:.0} s")
    }
}

/// Renders the canonical markdown performance table from parsed
/// `BENCH_appro.json` rows — the exact text of README.md §Performance
/// (a test in `tests/` asserts they stay in sync). Print it with
/// `cargo run -p mec-bench --bin sweepbench -- table`.
pub fn appro_perf_markdown(rows: &[ApproPerfRow]) -> String {
    const HEADERS: [&str; 6] = [
        "providers × cloudlets",
        "dense tableau",
        "revised simplex",
        "transportation",
        "speedup (revised)",
        "speedup (transp.)",
    ];
    let widths: Vec<usize> = HEADERS.iter().map(|h| h.chars().count()).collect();
    let mut out = String::new();
    out.push('|');
    for (h, w) in HEADERS.iter().zip(&widths) {
        // Manual pad: `{:>w$}` counts `×` as one char but README columns
        // are byte-aligned only when headers themselves set the width.
        out.push(' ');
        for _ in h.chars().count()..*w {
            out.push(' ');
        }
        out.push_str(h);
        out.push_str(" |");
    }
    out.push('\n');
    out.push('|');
    for w in &widths {
        for _ in 0..w + 1 {
            out.push('-');
        }
        out.push_str(":|");
    }
    out.push('\n');
    for r in rows {
        let cells = [
            format!("{} × {}", r.providers, r.cloudlets),
            fmt_secs(r.dense_seconds),
            fmt_secs(r.revised_seconds),
            fmt_secs(r.transportation_seconds),
            format!("{:.1}×", r.speedup_revised),
            format!("{:.1}×", r.speedup_transportation),
        ];
        out.push('|');
        for (cell, w) in cells.iter().zip(&widths) {
            out.push(' ');
            for _ in cell.chars().count()..*w {
                out.push(' ');
            }
            out.push_str(cell);
            out.push_str(" |");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("test", "x", &["a", "b"]);
        t.row(1.0, &[1.0, 2.0]);
        t.row(2.0, &[1.5, 2.5]);
        t.row(3.0, &[2.0, 3.0]);
        t
    }

    #[test]
    fn display_contains_everything() {
        let s = t().to_string();
        assert!(s.contains("## test"));
        assert!(s.contains('a') && s.contains('b'));
        assert!(s.contains("1.00") && s.contains("3.000"));
    }

    #[test]
    fn shape_helpers() {
        let t = t();
        assert!(t.column_non_decreasing(0, 0.0));
        assert!(t.column_non_decreasing(1, 0.0));
        assert!(t.column_dominates(0, 1, 0.0));
        assert!(!t.column_dominates(1, 0, 0.0));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", "x", &["a"]).row(0.0, &[1.0, 2.0]);
    }

    #[test]
    fn parse_appro_bench_extracts_rows() {
        let json = r#"{
  "results": [
    {
      "providers": 100,
      "cloudlets": 10,
      "dense_seconds": 0.059784,
      "revised_seconds": 0.009505,
      "transportation_seconds": 0.008674,
      "speedup_revised_vs_dense": 6.29,
      "speedup_transportation_vs_dense": 6.89
    }
  ]
}"#;
        let rows = parse_appro_bench(json);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].providers, 100);
        assert_eq!(rows[0].cloudlets, 10);
        assert!((rows[0].dense_seconds - 0.059784).abs() < 1e-12);
        assert!((rows[0].speedup_transportation - 6.89).abs() < 1e-12);
    }

    #[test]
    fn markdown_formats_cells_by_magnitude() {
        let row = ApproPerfRow {
            providers: 1000,
            cloudlets: 80,
            dense_seconds: 3800.360624,
            revised_seconds: 23.172053,
            transportation_seconds: 5.403851,
            speedup_revised: 164.01,
            speedup_transportation: 703.27,
        };
        let md = appro_perf_markdown(&[row]);
        let mut lines = md.lines();
        let header = lines.next().unwrap();
        let sep = lines.next().unwrap();
        let body = lines.next().unwrap();
        assert_eq!(header.chars().count(), sep.chars().count());
        assert_eq!(header.chars().count(), body.chars().count());
        for cell in [
            "1000 × 80",
            "3800 s",
            "23.2 s",
            "5.40 s",
            "164.0×",
            "703.3×",
        ] {
            assert!(body.contains(cell), "missing `{cell}` in `{body}`");
        }
    }
}
