//! Plain-text result tables, one per figure panel.

use std::fmt;

/// A result table: an x-axis column plus one column per algorithm/series.
///
/// # Examples
///
/// ```
/// use mec_bench::table::Table;
///
/// let mut t = Table::new("Fig. X", "network size", &["LCF", "OffloadCache"]);
/// t.row(50.0, &[1.0, 2.0]);
/// let s = t.to_string();
/// assert!(s.contains("LCF"));
/// assert!(s.contains("50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column count.
    pub fn row(&mut self, x: f64, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width mismatches columns"
        );
        self.rows.push((x, values.to_vec()));
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column labels (excluding the x column).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Raw rows.
    pub fn rows(&self) -> &[(f64, Vec<f64>)] {
        &self.rows
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// `true` if column `col` is non-decreasing down the rows (within
    /// `tol` slack) — used by shape assertions in EXPERIMENTS.md tests.
    pub fn column_non_decreasing(&self, col: usize, tol: f64) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[1].1[col] >= w[0].1[col] - tol)
    }

    /// `true` if column `a` is pointwise ≤ column `b` (within `tol`).
    pub fn column_dominates(&self, a: usize, b: usize, tol: f64) -> bool {
        self.rows.iter().all(|(_, v)| v[a] <= v[b] + tol)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        write!(f, "{:>14}", self.x_label)?;
        for c in &self.columns {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (x, values) in &self.rows {
            write!(f, "{x:>14.2}")?;
            for v in values {
                write!(f, "{v:>16.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("test", "x", &["a", "b"]);
        t.row(1.0, &[1.0, 2.0]);
        t.row(2.0, &[1.5, 2.5]);
        t.row(3.0, &[2.0, 3.0]);
        t
    }

    #[test]
    fn display_contains_everything() {
        let s = t().to_string();
        assert!(s.contains("## test"));
        assert!(s.contains('a') && s.contains('b'));
        assert!(s.contains("1.00") && s.contains("3.000"));
    }

    #[test]
    fn shape_helpers() {
        let t = t();
        assert!(t.column_non_decreasing(0, 0.0));
        assert!(t.column_non_decreasing(1, 0.0));
        assert!(t.column_dominates(0, 1, 0.0));
        assert!(!t.column_dominates(1, 0, 0.0));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", "x", &["a"]).row(0.0, &[1.0, 2.0]);
    }
}
