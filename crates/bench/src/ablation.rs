//! Ablation studies for the design choices called out in DESIGN.md.

use mec_core::appro::{appro, ApproConfig};
use mec_core::game::MoveOrder;
use mec_core::lcf::{lcf, LcfConfig, SelectionRule};
use mec_workload::scenario::waxman_scenario;
use mec_workload::{gtitm_scenario, Params};

use crate::table::Table;

/// Slot pricing: marginal-congestion (ours) vs paper-literal flat (Eq. 9).
pub fn ablation_gap_pricing(sizes: &[usize], seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: GAP slot pricing (Appro social cost)",
        "network size",
        &["marginal", "flat"],
    );
    for &size in sizes {
        let mut marginal = 0.0;
        let mut flat = 0.0;
        for &seed in seeds {
            let s = gtitm_scenario(size, &Params::paper().with_providers(60), seed);
            let m = &s.generated.market;
            marginal += appro(m, &ApproConfig::new()).unwrap().social_cost / seeds.len() as f64;
            flat += appro(m, &ApproConfig::paper_flat()).unwrap().social_cost / seeds.len() as f64;
        }
        t.row(size as f64, &[marginal, flat]);
    }
    t
}

/// Coordination selection: Largest-Cost-First vs Smallest-Cost-First vs
/// random.
pub fn ablation_selection(xi: f64, seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: coordination selection rule (LCF social cost)",
        "seed",
        &["largest-cost-first", "smallest-cost-first", "random"],
    );
    for &seed in seeds {
        let s = gtitm_scenario(150, &Params::paper().with_providers(60), seed);
        let m = &s.generated.market;
        let run = |rule: SelectionRule| {
            lcf(
                m,
                &LcfConfig {
                    selection: rule,
                    ..LcfConfig::new(xi)
                },
            )
            .unwrap()
            .social_cost
        };
        t.row(
            seed as f64,
            &[
                run(SelectionRule::LargestCostFirst),
                run(SelectionRule::SmallestCostFirst),
                run(SelectionRule::Random(seed)),
            ],
        );
    }
    t
}

/// The "to cache or not to cache" opt-out: remote serving allowed vs
/// forbidden.
pub fn ablation_optout(seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: remote opt-out (LCF social cost)",
        "seed",
        &["opt-out allowed", "must cache"],
    );
    for &seed in seeds {
        let with = gtitm_scenario(150, &Params::paper().with_providers(60), seed);
        let mut p = Params::paper().with_providers(60);
        p.allow_remote = false;
        let without = gtitm_scenario(150, &p, seed);
        let a = lcf(&with.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost;
        let b = lcf(&without.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost;
        t.row(seed as f64, &[a, b]);
    }
    t
}

/// Topology robustness: the LCF-vs-baselines ordering must hold on both
/// of GT-ITM's models (transit-stub and flat Waxman).
pub fn ablation_topology(size: usize, seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: topology model (social cost, LCF | Jo | Off)",
        "seed",
        &["ts LCF", "ts Jo", "ts Off", "wax LCF", "wax Jo", "wax Off"],
    );
    for &seed in seeds {
        let params = Params::paper().with_providers(60);
        let mut row = Vec::new();
        for scenario in [
            gtitm_scenario(size, &params, seed),
            waxman_scenario(size, &params, seed),
        ] {
            let m = &scenario.generated.market;
            row.push(lcf(m, &LcfConfig::new(0.7)).unwrap().social_cost);
            row.push(
                mec_baselines::jo_offload_cache(
                    &scenario.generated,
                    &mec_baselines::JoConfig::default(),
                )
                .social_cost,
            );
            row.push(mec_baselines::offload_cache(&scenario.generated).social_cost);
        }
        t.row(seed as f64, &row);
    }
    t
}

/// Best-response move order: round-robin vs max-gain (moves to converge).
pub fn ablation_br_order(seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: best-response order (moves to converge)",
        "seed",
        &["round-robin", "max-gain"],
    );
    for &seed in seeds {
        let s = gtitm_scenario(150, &Params::paper().with_providers(60), seed);
        let m = &s.generated.market;
        let run = |order: MoveOrder| {
            lcf(
                m,
                &LcfConfig {
                    order,
                    ..LcfConfig::new(0.3)
                },
            )
            .unwrap()
            .convergence
            .moves as f64
        };
        t.row(
            seed as f64,
            &[run(MoveOrder::RoundRobin), run(MoveOrder::MaxGain)],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_ablation_marginal_wins() {
        let t = ablation_gap_pricing(&[60], &[1]);
        assert!(
            t.column_dominates(0, 1, 1e-6),
            "marginal should dominate flat"
        );
    }

    #[test]
    fn selection_ablation_runs() {
        let t = ablation_selection(0.5, &[1]);
        assert_eq!(t.rows().len(), 1);
        for v in &t.rows()[0].1 {
            assert!(v.is_finite() && *v > 0.0);
        }
    }

    #[test]
    fn optout_ablation_optout_no_worse() {
        // Forbidding the opt-out removes strategies, so cost cannot drop.
        let t = ablation_optout(&[1, 2]);
        assert!(t.column_dominates(0, 1, 1e-6));
    }

    #[test]
    fn br_order_both_converge() {
        let t = ablation_br_order(&[1]);
        for v in &t.rows()[0].1 {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn topology_ablation_ordering_holds_on_both_models() {
        let t = ablation_topology(100, &[1]);
        let row = &t.rows()[0].1;
        // LCF <= Jo <= Off on transit-stub and on Waxman.
        assert!(
            row[0] <= row[1] + 1e-6 && row[1] <= row[2] + 1e-6,
            "ts {row:?}"
        );
        assert!(
            row[3] <= row[4] + 1e-6 && row[4] <= row[5] + 1e-6,
            "wax {row:?}"
        );
    }
}
