//! Regenerates the paper's Fig. 7 tables. Pass `--quick` for a reduced run.

#![forbid(unsafe_code)]

fn main() {
    let cfg = mec_bench::run_config_from_args();
    mec_bench::print_tables(&mec_bench::fig7(&cfg));
}
