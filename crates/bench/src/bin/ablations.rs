//! Runs the DESIGN.md ablation studies and prints their tables.

#![forbid(unsafe_code)]

use mec_bench::ablation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2, 3] };
    let sizes: &[usize] = if quick { &[60] } else { &[50, 150, 250] };
    println!("{}", ablation::ablation_gap_pricing(sizes, &seeds));
    println!("{}", ablation::ablation_selection(0.7, &seeds));
    println!("{}", ablation::ablation_optout(&seeds));
    println!("{}", ablation::ablation_br_order(&seeds));
    println!(
        "{}",
        ablation::ablation_topology(if quick { 80 } else { 150 }, &seeds)
    );
}
