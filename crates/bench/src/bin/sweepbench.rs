//! Best-response sweep benchmark: seed recompute path vs incremental
//! `GameState` path, written to `BENCH_dynamics.json`.
//!
//! Runs round-robin best-response dynamics from the all-remote profile on
//! GT-ITM markets and reports, per market size: wall-clock sweep time of
//! both implementations, moves per second, the speedup, and an
//! allocations-avoided proxy (the recompute path pays three heap
//! allocations per best-response query — congestion, loads, residual — plus
//! one profile clone per round; the incremental path pays none of those).
//!
//! Both implementations are verified to produce identical equilibria before
//! anything is timed. Run with `--release`; a debug build also times the
//! per-move differential `debug_assert` inside `GameState::apply_move`,
//! which exists to validate the incremental state, not to be benchmarked.

use std::time::Instant;

use mec_core::game::{BestResponseDynamics, Convergence, MoveOrder};
use mec_core::Profile;
use mec_workload::{gtitm_scenario, Params, Scenario};

struct Measured {
    seconds: f64,
    convergence: Convergence,
}

fn time_run(f: impl Fn() -> Convergence, reps: usize) -> Measured {
    let mut best = f64::INFINITY;
    let mut convergence = f();
    for _ in 0..reps {
        let start = Instant::now();
        convergence = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measured {
        seconds: best,
        convergence,
    }
}

struct Row {
    providers: usize,
    cloudlets: usize,
    reference: Measured,
    incremental: Measured,
    allocations_avoided: usize,
}

fn measure(scenario: &Scenario, reps: usize) -> Row {
    let market = &scenario.generated.market;
    let n = market.provider_count();
    let movable = vec![true; n];

    // Sanity: both paths must agree before timing means anything.
    let mut p_ref = Profile::all_remote(n);
    let mut p_inc = Profile::all_remote(n);
    let driver = BestResponseDynamics::new(MoveOrder::RoundRobin);
    let c_ref = driver.run_reference(market, &mut p_ref, &movable);
    let c_inc = driver.run(market, &mut p_inc, &movable);
    assert_eq!(c_ref, c_inc, "convergence stats diverged");
    assert_eq!(p_ref, p_inc, "equilibria diverged");

    let reference = time_run(
        || {
            let mut profile = Profile::all_remote(n);
            driver.run_reference(market, &mut profile, &movable)
        },
        reps,
    );
    let incremental = time_run(
        || {
            let mut profile = Profile::all_remote(n);
            driver.run(market, &mut profile, &movable)
        },
        reps,
    );

    // The reference round-robin sweep calls best_response once per movable
    // provider per round (3 allocations each) and clones the profile once
    // per round; the incremental sweep allocates nothing per round.
    let rounds = incremental.convergence.rounds;
    let allocations_avoided = 3 * rounds * n + rounds;

    Row {
        providers: n,
        cloudlets: market.cloudlet_count(),
        reference,
        incremental,
        allocations_avoided,
    }
}

fn json_row(r: &Row) -> String {
    let speedup = r.reference.seconds / r.incremental.seconds;
    let moves = r.incremental.convergence.moves as f64;
    format!(
        concat!(
            "    {{\n",
            "      \"providers\": {},\n",
            "      \"cloudlets\": {},\n",
            "      \"rounds\": {},\n",
            "      \"moves\": {},\n",
            "      \"reference_seconds\": {:.6},\n",
            "      \"incremental_seconds\": {:.6},\n",
            "      \"reference_moves_per_sec\": {:.1},\n",
            "      \"incremental_moves_per_sec\": {:.1},\n",
            "      \"speedup\": {:.2},\n",
            "      \"allocations_avoided\": {}\n",
            "    }}"
        ),
        r.providers,
        r.cloudlets,
        r.incremental.convergence.rounds,
        r.incremental.convergence.moves,
        r.reference.seconds,
        r.incremental.seconds,
        moves / r.reference.seconds,
        moves / r.incremental.seconds,
        speedup,
        r.allocations_avoided,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (network size, providers): cloudlets are ~10% of network nodes, so
    // the headline config is ≥500 providers on ≥50 cloudlets.
    let configs: &[(usize, usize)] = if quick {
        &[(200, 100)]
    } else {
        &[(200, 100), (500, 500), (800, 1000)]
    };
    let reps = if quick { 2 } else { 5 };

    let mut rows = Vec::new();
    for &(size, providers) in configs {
        let s = gtitm_scenario(size, &Params::paper().with_providers(providers), 42);
        let row = measure(&s, reps);
        eprintln!(
            "providers {:4} cloudlets {:3}: reference {:.4}s incremental {:.4}s speedup {:.2}x",
            row.providers,
            row.cloudlets,
            row.reference.seconds,
            row.incremental.seconds,
            row.reference.seconds / row.incremental.seconds,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"best_response_dynamics_sweep\",\n",
            "  \"order\": \"round_robin\",\n",
            "  \"build\": \"{}\",\n",
            "  \"note\": \"min of {} reps per cell; reference = seed recompute path, ",
            "incremental = GameState path; allocations_avoided = 3*rounds*providers + rounds\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        reps,
        body.join(",\n"),
    );
    // The checked-in BENCH_dynamics.json is a release-build artifact; a
    // debug run times the differential debug_assert in apply_move, not the
    // algorithm, so it must never overwrite the recorded numbers.
    if cfg!(debug_assertions) {
        eprintln!(
            "sweepbench: debug build — refusing to overwrite BENCH_dynamics.json \
             (regenerate with `cargo run --release -p mec-bench --bin sweepbench`)"
        );
    } else {
        std::fs::write("BENCH_dynamics.json", &json).expect("write BENCH_dynamics.json");
    }
    println!("{json}");
}
