//! Sweep benchmarks behind the checked-in `BENCH_*.json` artifacts.
//!
//! Two modes:
//!
//! * **dynamics** (default) — best-response sweeps: seed recompute path vs
//!   incremental `GameState` path, written to `BENCH_dynamics.json`. Runs
//!   round-robin best-response dynamics from the all-remote profile on
//!   GT-ITM markets and reports, per market size: wall-clock sweep time of
//!   both implementations, moves per second, the speedup, and an
//!   allocations-avoided proxy (the recompute path pays three heap
//!   allocations per best-response query — congestion, loads, residual —
//!   plus one profile clone per round; the incremental path pays none).
//!
//! * **appro** (`sweepbench appro`) — the end-to-end `appro` pipeline over
//!   a providers × cloudlets grid, one timing per LP backend (dense
//!   tableau, sparse revised simplex, min-cost-flow transportation fast
//!   path), written to `BENCH_appro.json`. Backends are checked to agree
//!   on the LP lower bound and the rounded assignment cost before anything
//!   is timed. `--smoke` runs one tiny cell once per backend — the CI
//!   bit-rot guard, valid in debug builds because it never writes.
//!
//! * **scenarios** (`sweepbench scenarios`) — no timing: replays the
//!   standard dynamic-popularity traces (diurnal Zipf, flash crowd,
//!   popularity drift; `mec-scenario`, seed 42) under the game placement
//!   and the LRU / LFU / GDSF eviction baselines on one GT-ITM market,
//!   written to `BENCH_scenarios.json`. Deterministic — no wall-clock in
//!   the artifact — so any build may regenerate it, but debug/`--obs`
//!   runs still refuse to overwrite (artifact hygiene: one canonical
//!   regeneration command). `cargo xtask tailgate scenarios` gates on it.
//!
//! * **table** (`sweepbench table`) — no timing: renders the checked-in
//!   `BENCH_appro.json` as the canonical markdown performance table that
//!   README.md embeds (kept in sync by `tests/readme_table.rs`).
//!
//! Both timing modes verify their compared paths agree before timing, and
//! both refuse to overwrite their checked-in artifact from a debug build.
//!
//! `--obs <path>` (either mode) streams mec-obs events — phase spans, LP
//! pivot counts, per-round potential, move counters — to `<path>` as JSONL;
//! summarize with `obsreport <path>`. Requires building with `--features
//! obs` (otherwise the flag warns and is ignored). Because the probes add
//! overhead inside the timed loops, an `--obs` run also refuses to
//! overwrite the checked-in artifacts.

#![forbid(unsafe_code)]

use std::time::Instant;

use mec_core::appro::{appro, ApproConfig};
use mec_core::game::{BestResponseDynamics, Convergence, MoveOrder};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::Profile;
use mec_gap::LpBackend;
use mec_workload::{gtitm_scenario, Params, Scenario};

struct Measured {
    seconds: f64,
    convergence: Convergence,
}

fn time_run(f: impl Fn() -> Convergence, reps: usize) -> Measured {
    let mut best = f64::INFINITY;
    let mut convergence = f();
    for _ in 0..reps {
        let start = Instant::now();
        convergence = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measured {
        seconds: best,
        convergence,
    }
}

struct Row {
    providers: usize,
    cloudlets: usize,
    reference: Measured,
    incremental: Measured,
    allocations_avoided: usize,
}

fn measure(scenario: &Scenario, reps: usize) -> Row {
    let market = &scenario.generated.market;
    let n = market.provider_count();
    let movable = vec![true; n];

    // Sanity: both paths must agree before timing means anything.
    let mut p_ref = Profile::all_remote(n);
    let mut p_inc = Profile::all_remote(n);
    let driver = BestResponseDynamics::new(MoveOrder::RoundRobin);
    let c_ref = driver.run_reference(market, &mut p_ref, &movable);
    let c_inc = driver.run(market, &mut p_inc, &movable);
    assert_eq!(c_ref, c_inc, "convergence stats diverged");
    assert_eq!(p_ref, p_inc, "equilibria diverged");

    let reference = time_run(
        || {
            let mut profile = Profile::all_remote(n);
            driver.run_reference(market, &mut profile, &movable)
        },
        reps,
    );
    let incremental = time_run(
        || {
            let mut profile = Profile::all_remote(n);
            driver.run(market, &mut profile, &movable)
        },
        reps,
    );

    // The reference round-robin sweep calls best_response once per movable
    // provider per round (3 allocations each) and clones the profile once
    // per round; the incremental sweep allocates nothing per round.
    let rounds = incremental.convergence.rounds;
    let allocations_avoided = 3 * rounds * n + rounds;

    Row {
        providers: n,
        cloudlets: market.cloudlet_count(),
        reference,
        incremental,
        allocations_avoided,
    }
}

fn json_row(r: &Row) -> String {
    let speedup = r.reference.seconds / r.incremental.seconds;
    let moves = r.incremental.convergence.moves as f64;
    format!(
        concat!(
            "    {{\n",
            "      \"providers\": {},\n",
            "      \"cloudlets\": {},\n",
            "      \"rounds\": {},\n",
            "      \"moves\": {},\n",
            "      \"reference_seconds\": {:.6},\n",
            "      \"incremental_seconds\": {:.6},\n",
            "      \"reference_moves_per_sec\": {:.1},\n",
            "      \"incremental_moves_per_sec\": {:.1},\n",
            "      \"speedup\": {:.2},\n",
            "      \"allocations_avoided\": {}\n",
            "    }}"
        ),
        r.providers,
        r.cloudlets,
        r.incremental.convergence.rounds,
        r.incremental.convergence.moves,
        r.reference.seconds,
        r.incremental.seconds,
        moves / r.reference.seconds,
        moves / r.incremental.seconds,
        speedup,
        r.allocations_avoided,
    )
}

/// A synthetic market with exactly `providers` providers and `cloudlets`
/// cloudlets, shaped like the paper's workloads: heterogeneous demands and
/// congestion prices, capacities sized so roughly 80% of the providers fit
/// on cloudlets (the rest compete or stay remote — keeps every capacity row
/// of the relaxation meaningful).
fn appro_market(providers: usize, cloudlets: usize) -> Market {
    // a_max = 3, b_max = 11 below; one slot = one largest service.
    let slots_per = ((providers * 4) / (5 * cloudlets)).max(2);
    let mut b = Market::builder();
    for k in 0..cloudlets {
        b = b.cloudlet(CloudletSpec::new(
            3.0 * slots_per as f64,
            11.0 * slots_per as f64,
            0.2 + 0.1 * (k % 7) as f64,
            0.3 + 0.05 * (k % 5) as f64,
        ));
    }
    // Continuous (hash-jittered) demands: discrete demand classes would let
    // equal-weight providers swap bins at tight capacity rows for free,
    // creating families of optimal LP vertices separated by less than the
    // solvers' pricing tolerance — and the backends would then round
    // different vertices to different assignments. With no two providers
    // sharing a weight, those swap directions are capacity-infeasible and
    // the optimum is isolated.
    for k in 0..providers {
        b = b.provider(ProviderSpec::new(
            1.0 + 2.0 * pair_jitter(k, usize::MAX - 1),
            5.0 + 6.0 * pair_jitter(k, usize::MAX - 2),
            1.0 + 1e-4 * k as f64,
            40.0 + 2e-4 * k as f64,
        ));
    }
    // Per-pair update-cost jitter makes the LP optimum generically unique:
    // a separable cost (provider term + cloudlet term) admits equal-cost
    // provider swaps between bins, and the backends then legitimately land
    // on different optimal vertices that round to different assignments.
    // A *linear* jitter (a*l + b*i mod p) stays separable wherever the mod
    // doesn't wrap and leaves exact tie cycles, so the jitter must be a
    // hash: alternating sums over any swap cycle are then nonzero except
    // with probability ~2^-53 per cycle.
    let update: Vec<f64> = (0..providers)
        .flat_map(|l| (0..cloudlets).map(move |i| 0.2 + 0.8 * pair_jitter(l, i)))
        .collect();
    b.update_cost_matrix(update).build()
}

/// Deterministic hash of a (provider, cloudlet) pair to a uniform-looking
/// value in [0, 1) with full 53-bit resolution (splitmix64 finalizer).
fn pair_jitter(l: usize, i: usize) -> f64 {
    let mut z = (l as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

struct ApproCell {
    providers: usize,
    cloudlets: usize,
    slots_per_cloudlet: usize,
    lp_lower_bound: f64,
    flat_cost: f64,
    /// Per backend: (label, best seconds, reps).
    timings: Vec<(&'static str, f64, usize)>,
}

/// Times `appro` under each backend on one grid cell. Before timing,
/// asserts all backends agree on the LP lower bound and rounded-assignment
/// cost (equal-cost ties allowed — the costs must match, the placements
/// need not).
fn measure_appro(providers: usize, cloudlets: usize, reps: usize, dense_reps: usize) -> ApproCell {
    let market = appro_market(providers, cloudlets);
    // MergedSlots + Flat + repair, no polish: the LP dominates the
    // pipeline, which is what the backends differ on.
    let config = |backend| ApproConfig::paper_flat().with_lp_backend(backend);

    let backends = [
        ("transportation", LpBackend::Transportation, reps),
        ("revised", LpBackend::Revised, reps),
        ("dense", LpBackend::Dense, dense_reps),
    ];

    // Agreement check (also warms up): every backend must reproduce the
    // same relaxation optimum and assignment cost.
    let reference = appro(&market, &config(LpBackend::Transportation)).expect("appro failed");
    let mut timings = Vec::new();
    for (label, backend, cell_reps) in backends {
        let mut best = f64::INFINITY;
        for _ in 0..cell_reps {
            let start = Instant::now();
            let sol = appro(&market, &config(backend)).expect("appro failed");
            best = best.min(start.elapsed().as_secs_f64());
            assert!(
                (sol.lp_lower_bound - reference.lp_lower_bound).abs()
                    < 1e-6 * (1.0 + reference.lp_lower_bound.abs()),
                "{label}: LP bound {} diverges from {}",
                sol.lp_lower_bound,
                reference.lp_lower_bound
            );
            assert!(
                (sol.flat_cost - reference.flat_cost).abs()
                    < 1e-6 * (1.0 + reference.flat_cost.abs()),
                "{label}: assignment cost {} diverges from {} (not an equal-cost tie)",
                sol.flat_cost,
                reference.flat_cost
            );
        }
        eprintln!(
            "  providers {providers:5} cloudlets {cloudlets:3} {label:>14}: {best:.4}s (min of {cell_reps})"
        );
        timings.push((label, best, cell_reps));
    }

    ApproCell {
        providers,
        cloudlets,
        slots_per_cloudlet: ((providers * 4) / (5 * cloudlets)).max(2),
        lp_lower_bound: reference.lp_lower_bound,
        flat_cost: reference.flat_cost,
        timings,
    }
}

fn appro_json_row(c: &ApproCell) -> String {
    let secs = |label: &str| {
        c.timings
            .iter()
            .find(|(l, _, _)| *l == label)
            .map(|&(_, s, r)| (s, r))
            .expect("backend timed")
    };
    let (dense_s, dense_r) = secs("dense");
    let (revised_s, revised_r) = secs("revised");
    let (transportation_s, transportation_r) = secs("transportation");
    format!(
        concat!(
            "    {{\n",
            "      \"providers\": {},\n",
            "      \"cloudlets\": {},\n",
            "      \"slots_per_cloudlet\": {},\n",
            "      \"lp_lower_bound\": {:.6},\n",
            "      \"assignment_flat_cost\": {:.6},\n",
            "      \"dense_seconds\": {:.6},\n",
            "      \"dense_reps\": {},\n",
            "      \"revised_seconds\": {:.6},\n",
            "      \"revised_reps\": {},\n",
            "      \"transportation_seconds\": {:.6},\n",
            "      \"transportation_reps\": {},\n",
            "      \"speedup_revised_vs_dense\": {:.2},\n",
            "      \"speedup_transportation_vs_dense\": {:.2},\n",
            "      \"assignment_costs_match\": true\n",
            "    }}"
        ),
        c.providers,
        c.cloudlets,
        c.slots_per_cloudlet,
        c.lp_lower_bound,
        c.flat_cost,
        dense_s,
        dense_r,
        revised_s,
        revised_r,
        transportation_s,
        transportation_r,
        dense_s / revised_s,
        dense_s / transportation_s,
    )
}

fn run_appro_sweep(quick: bool, smoke: bool) {
    // (providers, cloudlets): the headline cell is 1000 × 80 (ISSUE 3
    // acceptance: ≥ 5× end-to-end speedup over the dense tableau there).
    let grid: &[(usize, usize)] = if smoke {
        &[(30, 5)]
    } else if quick {
        &[(100, 10)]
    } else {
        &[(100, 10), (300, 30), (1000, 80)]
    };
    let reps = if smoke { 1 } else { 5 };

    let mut rows = Vec::new();
    for &(providers, cloudlets) in grid {
        // The dense tableau at the headline cell runs minutes per solve;
        // one measured rep is honest (recorded per cell in the JSON) and
        // keeps regeneration tractable. Fast backends always get min-of-5.
        let dense_reps = if providers * cloudlets > 10_000 {
            1
        } else {
            reps
        };
        rows.push(measure_appro(providers, cloudlets, reps, dense_reps));
    }

    let body: Vec<String> = rows.iter().map(appro_json_row).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"appro_pipeline_sweep\",\n",
            "  \"config\": \"merged_slots, flat pricing, repair on, polish off\",\n",
            "  \"build\": \"{}\",\n",
            "  \"note\": \"end-to-end appro() wall clock per LP backend; min of the recorded ",
            "reps per cell; all backends verified to agree on the LP bound and the rounded ",
            "assignment cost before timing\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        body.join(",\n"),
    );
    // Like BENCH_dynamics.json: the checked-in artifact is release-only,
    // and an --obs run times the probes too, so it may not overwrite.
    if smoke || cfg!(debug_assertions) || mec_obs::sink_installed() {
        eprintln!(
            "sweepbench: {} — not overwriting BENCH_appro.json \
             (regenerate with `cargo run --release -p mec-bench --bin sweepbench -- appro`)",
            if smoke {
                "smoke mode"
            } else if cfg!(debug_assertions) {
                "debug build"
            } else {
                "obs trace active"
            }
        );
    } else {
        std::fs::write("BENCH_appro.json", &json).expect("write BENCH_appro.json");
    }
    println!("{json}");
}

/// The scenario comparison grid: the standard dynamic traces replayed
/// under every placement policy on one paper-shaped GT-ITM market.
/// Everything here is deterministic (trace generation, demand factors,
/// best-response dynamics, eviction simulation), so the artifact is
/// reproducible bit-for-bit from the recorded seed.
fn run_scenario_sweep() {
    use mec_baselines::eviction::{evaluate_trace, TracePolicy};

    const SEED: u64 = 42;
    const SIZE: usize = 100;
    const PROVIDERS: usize = 200;
    const EPOCHS: usize = 60;
    const REQUESTS_PER_EPOCH: usize = 400;

    let scenario = gtitm_scenario(SIZE, &Params::paper().with_providers(PROVIDERS), SEED);
    let market = &scenario.generated.market;
    let traces = mec_scenario::standard_traces(PROVIDERS, EPOCHS, REQUESTS_PER_EPOCH, SEED);

    let mut rows = Vec::new();
    for trace in &traces {
        for policy in TracePolicy::all() {
            let outcome = evaluate_trace(market, trace, policy);
            eprintln!(
                "  {:>16} {:>5}: hit rate {:.3}  social cost {:.3}  ({} re-caches)",
                trace.label,
                outcome.policy,
                outcome.hit_rate(),
                outcome.mean_social_cost,
                outcome.recaches,
            );
            rows.push(format!(
                concat!(
                    "    {{\n",
                    "      \"trace\": \"{}\",\n",
                    "      \"policy\": \"{}\",\n",
                    "      \"requests\": {},\n",
                    "      \"hits\": {},\n",
                    "      \"hit_rate\": {:.6},\n",
                    "      \"social_cost\": {:.6},\n",
                    "      \"recaches\": {}\n",
                    "    }}"
                ),
                trace.label,
                outcome.policy,
                outcome.requests,
                outcome.hits,
                outcome.hit_rate(),
                outcome.mean_social_cost,
                outcome.recaches,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"scenario_policy_sweep\",\n",
            "  \"seed\": {},\n",
            "  \"network_size\": {},\n",
            "  \"providers\": {},\n",
            "  \"epochs\": {},\n",
            "  \"requests_per_epoch\": {},\n",
            "  \"note\": \"standard mec-scenario traces replayed under the game placement and ",
            "the LRU/LFU/GDSF eviction baselines on one GT-ITM market; social_cost is the ",
            "per-epoch demand-scaled Eq. 6 cost averaged over epochs; fully deterministic\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SEED,
        SIZE,
        PROVIDERS,
        EPOCHS,
        REQUESTS_PER_EPOCH,
        rows.join(",\n"),
    );
    // Deterministic, but keep the same single-regeneration-command hygiene
    // as the timing artifacts: debug/--obs runs print without writing.
    if cfg!(debug_assertions) || mec_obs::sink_installed() {
        eprintln!(
            "sweepbench: {} — not overwriting BENCH_scenarios.json \
             (regenerate with `cargo run --release -p mec-bench --bin sweepbench -- scenarios`)",
            if cfg!(debug_assertions) {
                "debug build"
            } else {
                "obs trace active"
            }
        );
    } else {
        std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    }
    println!("{json}");
}

/// Strips `--obs <path>` out of `args` and installs the JSONL trace sink
/// (check `mec_obs::sink_installed()` for whether capture is live).
fn install_obs(args: &mut Vec<String>) {
    let Some(pos) = args.iter().position(|a| a == "--obs") else {
        return;
    };
    if pos + 1 >= args.len() {
        eprintln!("sweepbench: --obs requires a path argument");
        std::process::exit(2);
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    if !mec_obs::enabled() {
        eprintln!(
            "sweepbench: --obs ignored — rebuild with `--features obs` \
             (e.g. `cargo run --release -p mec-bench --features obs --bin sweepbench`)"
        );
        return;
    }
    if let Err(e) = mec_obs::install_file(std::path::Path::new(&path)) {
        eprintln!("sweepbench: cannot open obs trace `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("sweepbench: streaming observability events to {path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    install_obs(&mut args);
    if args.iter().any(|a| a == "table") {
        // Canonical markdown rendering of the checked-in artifact — the
        // exact text README.md §Performance must contain (enforced by
        // crates/bench/tests/readme_table.rs).
        let json = std::fs::read_to_string("BENCH_appro.json")
            .expect("read BENCH_appro.json (run from the workspace root)");
        let rows = mec_bench::table::parse_appro_bench(&json);
        print!("{}", mec_bench::table::appro_perf_markdown(&rows));
        return;
    }
    if args.iter().any(|a| a == "scenarios") {
        run_scenario_sweep();
        mec_obs::shutdown();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "appro") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_appro_sweep(quick, smoke);
        mec_obs::shutdown();
        return;
    }
    // (network size, providers): cloudlets are ~10% of network nodes, so
    // the headline config is ≥500 providers on ≥50 cloudlets.
    let configs: &[(usize, usize)] = if quick {
        &[(200, 100)]
    } else {
        &[(200, 100), (500, 500), (800, 1000)]
    };
    let reps = if quick { 2 } else { 5 };

    let mut rows = Vec::new();
    for &(size, providers) in configs {
        let s = gtitm_scenario(size, &Params::paper().with_providers(providers), 42);
        let row = measure(&s, reps);
        eprintln!(
            "providers {:4} cloudlets {:3}: reference {:.4}s incremental {:.4}s speedup {:.2}x",
            row.providers,
            row.cloudlets,
            row.reference.seconds,
            row.incremental.seconds,
            row.reference.seconds / row.incremental.seconds,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"best_response_dynamics_sweep\",\n",
            "  \"order\": \"round_robin\",\n",
            "  \"build\": \"{}\",\n",
            "  \"note\": \"min of {} reps per cell; reference = seed recompute path, ",
            "incremental = GameState path; allocations_avoided = 3*rounds*providers + rounds\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        reps,
        body.join(",\n"),
    );
    // The checked-in BENCH_dynamics.json is a release-build artifact; a
    // debug run times the differential debug_assert in apply_move — and an
    // --obs run times the probes too — not the algorithm, so neither may
    // overwrite the recorded numbers.
    if cfg!(debug_assertions) || mec_obs::sink_installed() {
        eprintln!(
            "sweepbench: {} — refusing to overwrite BENCH_dynamics.json \
             (regenerate with `cargo run --release -p mec-bench --bin sweepbench`)",
            if cfg!(debug_assertions) {
                "debug build"
            } else {
                "obs trace active"
            }
        );
    } else {
        std::fs::write("BENCH_dynamics.json", &json).expect("write BENCH_dynamics.json");
    }
    println!("{json}");
    mec_obs::shutdown();
}
