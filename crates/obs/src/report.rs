//! Folding a JSONL event stream into a human-readable summary.
//!
//! [`Report`] is the aggregation behind the `obsreport` binary: feed it
//! events (parsed with [`crate::wire::parse`]) and render it with
//! `Display`. Aggregation rules per event kind:
//!
//! * **span** — every event is one timed occurrence; durations are folded
//!   into a per-name [`Histogram`] and reported as count / p50 / p95 / p99 /
//!   max / total. Span durations are nanoseconds by convention and are
//!   printed human-scaled (`1.23ms`).
//! * **counter** / **hist** — these lines are *cumulative snapshots*
//!   (emitted by `flush()`), so the last line per name wins.
//! * **gauge** — a sampled series; reported as count / first / last /
//!   min / max.

use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

use crate::hist::Histogram;
use crate::wire::{parse, Event};

/// Snapshot statistics carried by a `hist` wire event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Summary of one gauge series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeSeries {
    /// Number of samples seen.
    pub count: u64,
    /// First sampled value.
    pub first: f64,
    /// Last sampled value.
    pub last: f64,
    /// Smallest sampled value (NaN samples are ignored for min/max).
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
}

/// Aggregated view of an event stream.
///
/// # Examples
///
/// ```
/// use mec_obs::report::Report;
/// use mec_obs::wire::Event;
///
/// let mut report = Report::new();
/// for dur in [100u64, 200, 900] {
///     report.add(Event::Span { name: "phase".into(), start_ns: 0, dur_ns: dur });
/// }
/// report.add(Event::Counter { name: "moves".into(), value: 42 });
/// assert_eq!(report.counters["moves"], 42);
/// assert_eq!(report.spans["phase"].count(), 3);
/// println!("{report}");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-span duration histograms (nanoseconds).
    pub spans: BTreeMap<String, Histogram>,
    /// Final cumulative value per counter.
    pub counters: BTreeMap<String, u64>,
    /// Per-gauge series summaries.
    pub gauges: BTreeMap<String, GaugeSeries>,
    /// Final snapshot per named histogram.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Events folded in.
    pub events: usize,
    /// Malformed lines skipped by [`Report::from_lines`].
    pub skipped: usize,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Folds one event into the report.
    pub fn add(&mut self, ev: Event) {
        self.events += 1;
        match ev {
            Event::Span { name, dur_ns, .. } => {
                self.spans.entry(name).or_default().record(dur_ns);
            }
            Event::Counter { name, value } => {
                self.counters.insert(name, value);
            }
            Event::Gauge { name, value, .. } => {
                let g = self.gauges.entry(name).or_insert(GaugeSeries {
                    count: 0,
                    first: value,
                    last: value,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                });
                g.count += 1;
                g.last = value;
                if value < g.min {
                    g.min = value;
                }
                if value > g.max {
                    g.max = value;
                }
            }
            Event::Hist {
                name,
                count,
                p50,
                p95,
                p99,
                max,
            } => {
                self.hists.insert(
                    name,
                    HistSnapshot {
                        count,
                        p50,
                        p95,
                        p99,
                        max,
                    },
                );
            }
        }
    }

    /// Reads a JSONL stream line by line, folding every parsable event and
    /// counting (not failing on) malformed lines. Blank lines are ignored.
    pub fn from_lines(reader: impl BufRead) -> std::io::Result<Report> {
        let mut report = Report::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse(&line) {
                Ok(ev) => report.add(ev),
                Err(_) => report.skipped += 1,
            }
        }
        Ok(report)
    }

    /// Folds per-shard histogram snapshots back into one combined view.
    ///
    /// A sharded `mec-serve` daemon emits its publish latency under
    /// per-shard names (`serve.publish.s0.ns` … `serve.publish.s3.ns`,
    /// one histogram per writer thread). This groups every snapshot
    /// whose penultimate dotted segment is `s<digits>` under the name
    /// with that segment removed (`serve.publish.ns`) and merges the
    /// group: counts sum, maxima take the max, and the percentile
    /// columns are count-weighted means — an approximation, since exact
    /// percentile merging needs the raw histograms, but a faithful
    /// center-of-mass summary of where the shards' tails sit.
    pub fn shard_folds(&self) -> BTreeMap<String, HistSnapshot> {
        let mut folds: BTreeMap<String, Vec<&HistSnapshot>> = BTreeMap::new();
        for (name, h) in &self.hists {
            if let Some(base) = shard_base(name) {
                folds.entry(base).or_default().push(h);
            }
        }
        folds
            .into_iter()
            .map(|(base, group)| {
                let count: u64 = group.iter().map(|h| h.count).sum();
                let weighted = |pick: fn(&HistSnapshot) -> u64| {
                    if count == 0 {
                        return 0;
                    }
                    let sum: u128 = group
                        .iter()
                        .map(|h| u128::from(pick(h)) * u128::from(h.count))
                        .sum();
                    (sum / u128::from(count)).min(u128::from(u64::MAX)) as u64
                };
                let snap = HistSnapshot {
                    count,
                    p50: weighted(|h| h.p50),
                    p95: weighted(|h| h.p95),
                    p99: weighted(|h| h.p99),
                    max: group.iter().map(|h| h.max).max().unwrap_or(0),
                };
                (base, snap)
            })
            .collect()
    }
}

/// `serve.publish.s2.ns` → `Some("serve.publish.ns")`; names without a
/// penultimate `s<digits>` segment fold nowhere.
///
/// Public because the Prometheus renderer ([`crate::prom`]) uses the
/// same convention to turn per-shard series into `shard="k"` labels.
pub fn shard_base(name: &str) -> Option<String> {
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() < 3 {
        return None;
    }
    let shard = segs[segs.len() - 2];
    let digits = shard.strip_prefix('s')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let mut base: Vec<&str> = segs[..segs.len() - 2].to_vec();
    base.push(segs[segs.len() - 1]);
    Some(base.join("."))
}

/// Renders a nanosecond quantity with a human-friendly unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

fn fmt_f64(v: f64) -> String {
    // lint: allow(float-cmp) — exact-zero display formatting guard.
    if v.is_finite() && v.abs() < 1e7 && (v.abs() >= 1e-3 || v == 0.0) {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "events: {}{}",
            self.events,
            if self.skipped > 0 {
                format!(" ({} malformed line(s) skipped)", self.skipped)
            } else {
                String::new()
            }
        )?;
        if !self.spans.is_empty() {
            writeln!(
                f,
                "\n{:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "span", "count", "p50", "p95", "p99", "max", "total"
            )?;
            for (name, h) in &self.spans {
                writeln!(
                    f,
                    "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count(),
                    fmt_ns(h.percentile(0.50)),
                    fmt_ns(h.percentile(0.95)),
                    fmt_ns(h.percentile(0.99)),
                    fmt_ns(h.max()),
                    fmt_ns(h.sum().min(u64::MAX as u128) as u64),
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "\n{:<32} {:>12}", "counter", "total")?;
            for (name, v) in &self.counters {
                writeln!(f, "{name:<32} {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(
                f,
                "\n{:<32} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "gauge", "count", "first", "last", "min", "max"
            )?;
            for (name, g) in &self.gauges {
                writeln!(
                    f,
                    "{:<32} {:>8} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    g.count,
                    fmt_f64(g.first),
                    fmt_f64(g.last),
                    fmt_f64(g.min),
                    fmt_f64(g.max),
                )?;
            }
        }
        // Span durations are re-emitted as cumulative `hist` snapshots at
        // flush time; the span section above already covers those names
        // from the richer per-event data, so only show the rest.
        let hist_rows: Vec<_> = self
            .hists
            .iter()
            .filter(|(name, _)| !self.spans.contains_key(*name))
            .collect();
        let folds = self.shard_folds();
        if !hist_rows.is_empty() || !folds.is_empty() {
            writeln!(
                f,
                "\n{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p95", "p99", "max"
            )?;
            for (name, h) in hist_rows {
                // A `.ns` suffix marks nanosecond-valued histograms (e.g.
                // `serve.publish.ns`); scale those like span durations so
                // the summary reads in ms/us, not ten-digit raw counts.
                let cell = |v: u64| {
                    if name.ends_with(".ns") {
                        fmt_ns(v)
                    } else {
                        v.to_string()
                    }
                };
                writeln!(
                    f,
                    "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    cell(h.p50),
                    cell(h.p95),
                    cell(h.p99),
                    cell(h.max)
                )?;
            }
            // Combined per-shard views (see [`Report::shard_folds`]):
            // one `<base> (shards)` row folding every `<base>.s<k>.ns`
            // histogram above it.
            for (base, h) in &folds {
                let cell = |v: u64| {
                    if base.ends_with(".ns") {
                        fmt_ns(v)
                    } else {
                        v.to_string()
                    }
                };
                writeln!(
                    f,
                    "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    format!("{base} (shards)"),
                    h.count,
                    cell(h.p50),
                    cell(h.p95),
                    cell(h.p99),
                    cell(h.max)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_take_last_snapshot() {
        let mut r = Report::new();
        r.add(Event::Counter {
            name: "c".into(),
            value: 10,
        });
        r.add(Event::Counter {
            name: "c".into(),
            value: 25,
        });
        assert_eq!(r.counters["c"], 25);
        assert_eq!(r.events, 2);
    }

    #[test]
    fn gauge_series_tracks_first_last_min_max() {
        let mut r = Report::new();
        for (seq, v) in [(0u64, 5.0f64), (1, -2.0), (2, 3.0)] {
            r.add(Event::Gauge {
                name: "g".into(),
                seq,
                value: v,
            });
        }
        let g = r.gauges["g"];
        assert_eq!(g.count, 3);
        assert!((g.first - 5.0).abs() < 1e-12);
        assert!((g.last - 3.0).abs() < 1e-12);
        assert!((g.min - (-2.0)).abs() < 1e-12);
        assert!((g.max - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_lines_skips_malformed() {
        let input = "\n{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\nnot json\n";
        let r = Report::from_lines(input.as_bytes()).unwrap();
        assert_eq!(r.events, 1);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn display_renders_all_sections() {
        let mut r = Report::new();
        r.add(Event::Span {
            name: "s".into(),
            start_ns: 0,
            dur_ns: 1_500_000,
        });
        r.add(Event::Counter {
            name: "c".into(),
            value: 7,
        });
        r.add(Event::Gauge {
            name: "g".into(),
            seq: 0,
            value: 1.25,
        });
        r.add(Event::Hist {
            name: "h".into(),
            count: 3,
            p50: 1,
            p95: 2,
            p99: 2,
            max: 9,
        });
        let text = format!("{r}");
        for needle in ["span", "counter", "gauge", "histogram", "1.50ms"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn ns_suffixed_histograms_render_human_scaled() {
        let mut r = Report::new();
        r.add(Event::Hist {
            name: "serve.publish.ns".into(),
            count: 10,
            p50: 2_500,
            p95: 40_000,
            p99: 1_200_000,
            max: 3_000_000_000,
        });
        r.add(Event::Hist {
            name: "serve.drain.batch".into(),
            count: 10,
            p50: 12,
            p95: 64,
            p99: 128,
            max: 256,
        });
        let text = format!("{r}");
        for needle in ["2.5us", "40.0us", "1.20ms", "3.000s"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Unitless histograms stay raw.
        assert!(text.contains("256"), "raw max missing in:\n{text}");
    }

    #[test]
    fn shard_folds_merge_per_shard_publish_hists() {
        let mut r = Report::new();
        for (k, count, p50, max) in [(0u32, 30u64, 1_000u64, 9_000u64), (1, 10, 5_000, 50_000)] {
            r.add(Event::Hist {
                name: format!("serve.publish.s{k}.ns"),
                count,
                p50,
                p95: p50 * 2,
                p99: p50 * 3,
                max,
            });
        }
        // Not shard-shaped: stays out of the fold.
        r.add(Event::Hist {
            name: "serve.drain.batch".into(),
            count: 4,
            p50: 8,
            p95: 16,
            p99: 16,
            max: 32,
        });
        let folds = r.shard_folds();
        assert_eq!(folds.len(), 1);
        let combined = folds["serve.publish.ns"];
        assert_eq!(combined.count, 40);
        // Count-weighted mean: (1000*30 + 5000*10) / 40 = 2000.
        assert_eq!(combined.p50, 2_000);
        assert_eq!(combined.max, 50_000);
        let text = format!("{r}");
        assert!(
            text.contains("serve.publish.ns (shards)"),
            "missing folded row in:\n{text}"
        );
    }

    #[test]
    fn shard_base_rejects_non_shard_names() {
        assert_eq!(
            shard_base("serve.publish.s3.ns").as_deref(),
            Some("serve.publish.ns")
        );
        assert_eq!(
            shard_base("serve.publish.s12.ns").as_deref(),
            Some("serve.publish.ns")
        );
        assert_eq!(shard_base("serve.publish.ns"), None);
        assert_eq!(shard_base("serve.sx.ns"), None);
        assert_eq!(shard_base("s0.ns"), None);
        assert_eq!(shard_base("serve.s.ns"), None);
    }
}
