//! `obsreport` — fold a JSONL observability trace into a summary table.
//!
//! ```text
//! obsreport <trace.jsonl | ->
//! obsreport --catalog
//! ```
//!
//! Reads the trace produced by a `--obs <path>` run (sweepbench,
//! verify-run) — or standard input when the argument is `-` — and prints
//! per-span count/p50/p95/p99/max/total, final counter totals, gauge series
//! summaries and histogram snapshots. Malformed lines are counted and
//! skipped, never fatal. Works regardless of whether this binary was built
//! with the `enabled` feature: parsing and folding are always compiled.
//!
//! `--catalog` instead prints the markdown metrics catalog rendered from
//! `mec_obs::probes::REGISTRY`; `cargo xtask metrics-doc` pipes this into
//! `docs/METRICS.md`.

#![forbid(unsafe_code)]

use std::fs::File;
use std::io::{self, BufReader, Read};

use mec_obs::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] if p == "--catalog" => {
            print!("{}", mec_obs::probes::catalog_markdown());
            return;
        }
        [p] if p != "--help" && p != "-h" => p.clone(),
        _ => {
            eprintln!("usage: obsreport <trace.jsonl | -> | obsreport --catalog");
            std::process::exit(2);
        }
    };

    let reader: Box<dyn Read> = if path == "-" {
        Box::new(io::stdin())
    } else {
        match File::open(&path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("obsreport: cannot open `{path}`: {e}");
                std::process::exit(1);
            }
        }
    };

    match Report::from_lines(BufReader::new(reader)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("obsreport: read error: {e}");
            std::process::exit(1);
        }
    }
}
