//! No-op probe implementations compiled when the `enabled` feature is off.
//!
//! Every function here is `#[inline(always)]` and empty, and [`Span`] is a
//! zero-sized type, so instrumented call sites cost nothing — the
//! `tests/noop.rs` integration test pins this down with a size assertion
//! and a "no events written" check.

use std::io::{self, Write};
use std::path::Path;

use crate::Summary;

/// Whether this build carries live instrumentation. Always `false` here;
/// `const` so call sites can be folded away at compile time.
#[inline(always)]
pub const fn enabled() -> bool {
    false
}

/// Whether an event sink is installed. Always `false` in no-op builds.
#[inline(always)]
pub fn sink_installed() -> bool {
    false
}

/// Would install a JSONL sink writing to `path`; does nothing here (the
/// file is not even created).
#[inline(always)]
pub fn install_file(_path: &Path) -> io::Result<()> {
    Ok(())
}

/// Would install a JSONL sink writing to `writer`; drops it unused here.
#[inline(always)]
pub fn install_writer(_writer: Box<dyn Write + Send>) {}

/// Would flush snapshots and remove the sink; does nothing here.
#[inline(always)]
pub fn shutdown() {}

/// Would add `delta` to the counter `name`; does nothing here.
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// Would sample a gauge series; does nothing here.
#[inline(always)]
pub fn gauge(_name: &'static str, _seq: u64, _value: f64) {}

/// Would record one value into the histogram `name`; does nothing here.
#[inline(always)]
pub fn record(_name: &'static str, _value: u64) {}

/// Would record a batch of values into the histogram `name`; does nothing
/// here (the iterator is not consumed).
#[inline(always)]
pub fn record_many(_name: &'static str, _values: &[u64]) {}

/// Would emit cumulative counter/histogram snapshots to the sink and flush
/// it; does nothing here.
#[inline(always)]
pub fn flush() {}

/// Snapshot of the registry. Always empty in no-op builds.
#[inline(always)]
pub fn summary() -> Summary {
    Summary::default()
}

/// Would clear the registry and drop the sink; does nothing here.
#[inline(always)]
pub fn reset() {}

/// Would clear only the histograms; nothing to clear here (0 dropped).
#[inline(always)]
pub fn reset_histograms() -> usize {
    0
}

/// RAII timer guard for a named span. A zero-sized type in no-op builds —
/// constructing and dropping it compiles to nothing.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to `_` drops immediately"]
pub struct Span;

/// Would start timing a span; returns the zero-sized guard here.
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}
