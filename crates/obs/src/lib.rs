//! Zero-cost-when-disabled observability for the MEC service-caching
//! workspace: monotonic counters, HDR-style histograms, RAII span timers
//! and a structured JSONL event sink.
//!
//! The crate has **no dependencies** and two personalities selected by the
//! `enabled` cargo feature:
//!
//! * **off (default)** — every probe ([`counter_add`], [`span`], [`gauge`],
//!   [`record`], ...) is an empty inlineable function, [`Span`] is a
//!   zero-sized type and no global state is linked. Instrumented code calls
//!   the probes unconditionally; the optimizer removes them.
//! * **on** — probes aggregate into a process-wide registry (counters and
//!   [`Histogram`]s) and, when a sink is installed with [`install_file`] or
//!   [`install_writer`], stream [`wire::Event`]s as JSON lines. [`flush`]
//!   emits cumulative counter/histogram snapshots and flushes the sink.
//!
//! Downstream crates depend on `mec-obs` unconditionally and forward an
//! `obs` feature to `mec-obs/enabled` (the same pattern as the workspace's
//! `verify` chain), so a single `--features obs` at the top level arms
//! every layer at once.
//!
//! The [`wire`] (JSONL encode/parse), [`hist`], [`report`] and [`prom`]
//! (Prometheus exposition) modules are always compiled regardless of the
//! feature, so the `obsreport` binary can summarize traces no matter how
//! it was built. [`probes`] carries the authoritative probe registry with
//! per-probe descriptions; `docs/METRICS.md` is generated from it.
//!
//! # Examples
//!
//! Instrumenting code (identical source for both feature states):
//!
//! ```
//! // Count work as it happens; time a section with an RAII guard.
//! mec_obs::counter_add("demo.items", 3);
//! {
//!     let _timer = mec_obs::span("demo.phase");
//!     // ... the timed section ...
//! } // guard drop records the duration
//! mec_obs::gauge("demo.progress", 0, 0.5);
//! ```
//!
//! The [`obs_span!`] / [`obs_counter!`] macros are shorthand for the same
//! calls:
//!
//! ```
//! use mec_obs::{obs_counter, obs_span};
//!
//! fn solve() -> u64 {
//!     obs_span!("demo.solve"); // times the rest of this scope
//!     obs_counter!("demo.solves", 1);
//!     42
//! }
//! assert_eq!(solve(), 42);
//! ```
//!
//! Capturing a trace (only does anything when built with `enabled`):
//!
//! ```no_run
//! mec_obs::install_file(std::path::Path::new("trace.jsonl")).unwrap();
//! // ... run the instrumented workload ...
//! mec_obs::flush(); // emit counter/histogram snapshots, flush the file
//! ```
//!
//! and summarize it with `obsreport trace.jsonl`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod probes;
pub mod prom;
pub mod report;
pub mod wire;

pub use hist::Histogram;
pub use report::Report;
pub use wire::Event;

/// Snapshot of the in-process registry: cumulative counters and
/// histograms, sorted by name. Always empty when the `enabled` feature is
/// off.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// `(name, cumulative value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` per recorded distribution (includes span
    /// durations under their span name).
    pub hists: Vec<(String, Histogram)>,
}

impl Summary {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Times the rest of the enclosing scope under `$name`.
///
/// Expands to a `let` binding of a [`Span`] guard, so the duration runs to
/// the end of the current block.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Adds `$delta` to the monotonic counter `$name`.
#[macro_export]
macro_rules! obs_counter {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

#[cfg(feature = "enabled")]
mod active;
#[cfg(feature = "enabled")]
pub use active::{
    counter_add, enabled, flush, gauge, install_file, install_writer, record, record_many, reset,
    reset_histograms, shutdown, sink_installed, span, summary, Span,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter_add, enabled, flush, gauge, install_file, install_writer, record, record_many, reset,
    reset_histograms, shutdown, sink_installed, span, summary, Span,
};
