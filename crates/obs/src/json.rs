//! Shared hand-rolled JSON primitives: string escaping, `f64`
//! formatting, and a flat-object parser.
//!
//! Both the observability trace format ([`crate::wire`]) and the
//! `mec-serve` wire protocol speak one-JSON-object-per-line with string
//! and number values only. This module is the single home for the
//! escaping and number rules, so the two formats cannot drift apart:
//!
//! * `u64` fields are written as JSON integers and parsed with
//!   [`str::parse`], so the full 64-bit range survives (no `f64` detour);
//! * finite `f64` values use Rust's shortest round-trip `Display`;
//!   non-finite values are written as the JSON strings `"NaN"`, `"inf"`
//!   and `"-inf"` (plain JSON has no spelling for them);
//! * strings are escaped per JSON rules (`\"`, `\\`, `\u00XX` for
//!   control characters) and may contain arbitrary Unicode.
//!
//! Nested containers are rejected by the parser — neither format
//! produces them; every message is one flat object.

use std::fmt;

/// Appends `s` to `out` as a JSON string literal (quoted and escaped).
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// mec_obs::json::push_string(&mut out, "a\"b");
/// assert_eq!(out, r#""a\"b""#);
/// ```
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON value: finite floats use the shortest
/// round-trip `Display`; `NaN`/`±inf` travel as the strings `"NaN"`,
/// `"inf"`, `"-inf"` (JSON has no literal for them).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        // Rust's Display for f64 is the shortest string that parses back to
        // the same value, so finite values round-trip bit-exactly.
        out.push_str(&format!("{v}"));
    }
}

/// Error describing why a line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    /// Builds an error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A raw field value: a decoded string or the unparsed number token.
pub enum Token {
    /// A decoded (unescaped) string value.
    Str(String),
    /// The raw text of a number value, left unparsed so the caller can
    /// choose `u64` (lossless) or `f64`.
    Num(String),
}

/// Looks up a raw field by key.
///
/// # Errors
///
/// Errors if the field is missing.
pub fn get<'a>(fields: &'a [(String, Token)], key: &str) -> Result<&'a Token, ParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::new(format!("missing field `{key}`")))
}

/// Looks up a string field by key.
///
/// # Errors
///
/// Errors if the field is missing or not a string.
pub fn get_str<'a>(fields: &'a [(String, Token)], key: &str) -> Result<&'a str, ParseError> {
    match get(fields, key)? {
        Token::Str(s) => Ok(s),
        Token::Num(_) => Err(ParseError::new(format!("field `{key}` is not a string"))),
    }
}

/// Looks up a `u64` field by key (full 64-bit range, no float detour).
///
/// # Errors
///
/// Errors if the field is missing, not a number, or out of range.
pub fn get_u64(fields: &[(String, Token)], key: &str) -> Result<u64, ParseError> {
    match get(fields, key)? {
        Token::Num(n) => n
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad integer `{n}`"))),
        Token::Str(_) => Err(ParseError::new(format!("field `{key}` is not a number"))),
    }
}

/// Looks up a `usize` field by key.
///
/// # Errors
///
/// Errors if the field is missing, not a number, or out of range.
pub fn get_usize(fields: &[(String, Token)], key: &str) -> Result<usize, ParseError> {
    usize::try_from(get_u64(fields, key)?)
        .map_err(|_| ParseError::new(format!("field `{key}` overflows usize")))
}

/// Looks up an `f64` field by key. Non-finite values travel as strings
/// (`"NaN"`, `"inf"`, `"-inf"` — the spellings [`push_f64`] produces),
/// which `f64::from_str` accepts.
///
/// # Errors
///
/// Errors if the field is missing or does not parse as a float.
pub fn get_f64(fields: &[(String, Token)], key: &str) -> Result<f64, ParseError> {
    match get(fields, key)? {
        Token::Num(n) => n
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad float `{n}`"))),
        Token::Str(s) => s
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad float `{s}`"))),
    }
}

/// Parses one line holding a single flat JSON object: string keys, values
/// that are strings or numbers. Nested containers are rejected (neither
/// wire format produces them).
///
/// # Errors
///
/// Errors on malformed JSON, nested values, or trailing characters.
pub fn parse_object(line: &str) -> Result<Vec<(String, Token)>, ParseError> {
    let mut chars = line.trim().chars().peekable();
    if chars.next() != Some('{') {
        return Err(ParseError::new("expected `{`"));
    }
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ => return Err(ParseError::new("expected field name")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(ParseError::new("expected `:`"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Token::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Token::Num(num)
            }
            _ => return Err(ParseError::new("expected string or number value")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err(ParseError::new("expected `,` or `}`")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(ParseError::new("trailing characters after object"));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError::new("expected `\"`"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(ParseError::new("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| ParseError::new("bad \\u escape"))?;
                        code = code * 16 + d;
                    }
                    let c = char::from_u32(code)
                        .ok_or_else(|| ParseError::new("\\u escape is not a scalar value"))?;
                    out.push(c);
                }
                _ => return Err(ParseError::new("unknown escape")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_and_parse_back() {
        for s in [
            "",
            "plain",
            "q\"uo\\te",
            "new\nline\ttab",
            "\u{1}ctl",
            "😀€",
        ] {
            let mut line = String::from("{\"k\":");
            push_string(&mut line, s);
            line.push('}');
            let fields = parse_object(&line).unwrap();
            assert_eq!(get_str(&fields, "k").unwrap(), s);
        }
    }

    #[test]
    fn f64_round_trips_including_non_finite() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY] {
            let mut line = String::from("{\"v\":");
            push_f64(&mut line, v);
            line.push('}');
            let got = get_f64(&parse_object(&line).unwrap(), "v").unwrap();
            if v.is_nan() {
                assert!(got.is_nan());
            } else {
                assert_eq!(got.to_bits(), v.to_bits(), "v={v}");
            }
        }
    }

    #[test]
    fn u64_full_range() {
        let line = format!("{{\"v\":{}}}", u64::MAX);
        assert_eq!(
            get_u64(&parse_object(&line).unwrap(), "v").unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn typed_getters_reject_wrong_kind() {
        let fields = parse_object(r#"{"s":"x","n":3}"#).unwrap();
        assert!(get_str(&fields, "n").is_err());
        assert!(get_u64(&fields, "s").is_err());
        assert!(get(&fields, "missing").is_err());
    }

    #[test]
    fn nested_and_malformed_rejected() {
        for line in ["", "{", "[1]", r#"{"a":[1]}"#, r#"{"a":{"b":1}}"#, "{}x"] {
            assert!(
                parse_object(line).is_err(),
                "line `{line}` should not parse"
            );
        }
    }
}
