//! The probe registry: every counter, histogram, gauge, and span name
//! the workspace emits through [`crate`] (`mec-obs`), with its value
//! shape and a one-line description.
//!
//! Probe names are stringly typed at the emit site — `counter_add`,
//! `record`, `span`, and friends all take `&str` — which makes a typo'd
//! or renamed-on-one-side-only probe a silent data loss: the writer
//! emits under one name, the dashboard or `obsreport` reader aggregates
//! under another, and nothing fails. This registry closes the loop. It
//! is the single source of truth for which names exist, and the
//! `probes` rule in `cargo xtask analyze` checks every *literal* probe
//! name at every emit site in the workspace against it, so an
//! unregistered name fails the build instead of vanishing from the
//! report.
//!
//! Names constructed at runtime (formatted or table-driven, like the
//! `marketload.*.ns` mirror loop in `mec-serve`'s load generator) are
//! invisible to that static check; they are registered here anyway so
//! the inventory stays complete for human readers and for `obsreport`.
//!
//! Naming convention: `<subsystem>.<event>[.<qualifier>]`, lowercase,
//! dot-separated; duration histograms carry a unit suffix (`.ns`,
//! `_us`). Keep the list sorted by name.
//!
//! When adding a probe: pick the name, emit it, register it here with a
//! description, and regenerate `docs/METRICS.md` with
//! `cargo xtask metrics-doc` — `cargo xtask analyze` and the
//! `metrics_doc` sync test hold you to both halves.

/// The value shape a probe emits under, which determines how readers
/// (`obsreport`, the `/metrics` endpoint) aggregate and render it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Monotonic cumulative count (`counter_add`).
    Counter,
    /// Value distribution (`record` / `record_many`), folded into a
    /// log-bucketed histogram.
    Histogram,
    /// Timed section (`span` / `obs_span!`); durations land in a
    /// nanosecond histogram, so readers treat it like [`Self::Histogram`].
    Span,
    /// Sampled instantaneous value (`gauge`), a time series.
    Gauge,
}

impl ProbeKind {
    /// Lowercase label used in the generated catalog and by the
    /// Prometheus renderer's `# TYPE` mapping.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::Counter => "counter",
            ProbeKind::Histogram => "histogram",
            ProbeKind::Span => "span",
            ProbeKind::Gauge => "gauge",
        }
    }
}

/// One registered probe: its wire name, value shape, and description.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Dot-separated wire name, e.g. `serve.publish.ns`.
    pub name: &'static str,
    /// How the value stream is shaped (counter / histogram / span / gauge).
    pub kind: ProbeKind,
    /// One-line human description, rendered into `docs/METRICS.md` and
    /// the `/metrics` `# HELP` lines.
    pub help: &'static str,
}

/// Every probe the workspace may emit, sorted lexicographically by name.
pub const REGISTRY: &[Probe] = &[
    // approximation pipeline (crates/core appro solver)
    Probe {
        name: "appro.gap_solve",
        kind: ProbeKind::Span,
        help: "Time spent in the GAP LP-solve stage of one Appro run.",
    },
    Probe {
        name: "appro.merge",
        kind: ProbeKind::Span,
        help: "Time spent merging per-cloudlet partial assignments.",
    },
    Probe {
        name: "appro.polish",
        kind: ProbeKind::Span,
        help: "Time spent in the post-rounding local-improvement polish.",
    },
    Probe {
        name: "appro.pricing",
        kind: ProbeKind::Span,
        help: "Time spent computing marginal cache prices.",
    },
    Probe {
        name: "appro.repair",
        kind: ProbeKind::Span,
        help: "Time spent repairing capacity violations after rounding.",
    },
    Probe {
        name: "appro.runs",
        kind: ProbeKind::Counter,
        help: "Completed Appro solver invocations.",
    },
    Probe {
        name: "appro.split",
        kind: ProbeKind::Span,
        help: "Time spent splitting the market into per-cloudlet subproblems.",
    },
    Probe {
        name: "appro.total",
        kind: ProbeKind::Span,
        help: "End-to-end wall time of one Appro solver run.",
    },
    Probe {
        name: "appro.virtual_slots",
        kind: ProbeKind::Counter,
        help: "Virtual capacity slots created across all Appro runs.",
    },
    // market dynamics and local search (crates/core)
    Probe {
        name: "core.dynamics.moves_applied",
        kind: ProbeKind::Counter,
        help: "Best-response moves actually applied by market dynamics.",
    },
    Probe {
        name: "core.dynamics.moves_attempted",
        kind: ProbeKind::Counter,
        help: "Candidate best-response moves evaluated by market dynamics.",
    },
    Probe {
        name: "core.dynamics.potential",
        kind: ProbeKind::Gauge,
        help: "Exact game potential sampled after each dynamics round.",
    },
    Probe {
        name: "core.dynamics.rounds",
        kind: ProbeKind::Counter,
        help: "Best-response rounds run until convergence or cutoff.",
    },
    Probe {
        name: "core.dynamics.run",
        kind: ProbeKind::Span,
        help: "Wall time of one full best-response dynamics run.",
    },
    Probe {
        name: "core.local_search.moves",
        kind: ProbeKind::Counter,
        help: "Improving swaps applied by the local-search refiner.",
    },
    Probe {
        name: "core.local_search.run",
        kind: ProbeKind::Span,
        help: "Wall time of one local-search refinement pass.",
    },
    // GAP rounding (crates/gap)
    Probe {
        name: "gap.lp_relax",
        kind: ProbeKind::Span,
        help: "Time solving the fractional GAP relaxation.",
    },
    Probe {
        name: "gap.round",
        kind: ProbeKind::Span,
        help: "Time rounding the fractional GAP solution to an assignment.",
    },
    Probe {
        name: "gap.rounding_slots",
        kind: ProbeKind::Counter,
        help: "Bipartite rounding-graph slots built across GAP roundings.",
    },
    // LP solver (crates/lp)
    Probe {
        name: "lp.pivots",
        kind: ProbeKind::Counter,
        help: "Simplex pivots executed by the revised-simplex backend.",
    },
    Probe {
        name: "lp.refactorizations",
        kind: ProbeKind::Counter,
        help: "Basis refactorizations triggered by eta-file growth.",
    },
    Probe {
        name: "lp.revised.solve",
        kind: ProbeKind::Span,
        help: "Wall time of one revised-simplex solve.",
    },
    Probe {
        name: "lp.revised.solves",
        kind: ProbeKind::Counter,
        help: "Completed revised-simplex solves.",
    },
    // load generator (crates/serve load harness; the `.ns` histograms
    // are emitted through a table, i.e. runtime-constructed)
    Probe {
        name: "marketload.join.ns",
        kind: ProbeKind::Histogram,
        help: "Client-observed join round-trip latency (load generator).",
    },
    Probe {
        name: "marketload.leave.ns",
        kind: ProbeKind::Histogram,
        help: "Client-observed leave round-trip latency (load generator).",
    },
    Probe {
        name: "marketload.query.ns",
        kind: ProbeKind::Histogram,
        help: "Client-observed query round-trip latency (load generator).",
    },
    Probe {
        name: "marketload.rejected",
        kind: ProbeKind::Counter,
        help: "Join requests the daemon refused during the load run.",
    },
    Probe {
        name: "marketload.update.ns",
        kind: ProbeKind::Histogram,
        help: "Client-observed update round-trip latency (load generator).",
    },
    // serve daemon data plane (crates/serve)
    Probe {
        name: "serve.cache.hit",
        kind: ProbeKind::Counter,
        help: "Queries answered while the provider was cached at a cloudlet.",
    },
    Probe {
        name: "serve.cache.miss",
        kind: ProbeKind::Counter,
        help: "Queries answered while the provider was remote or inactive.",
    },
    Probe {
        name: "serve.drain.batch",
        kind: ProbeKind::Histogram,
        help: "Commands taken per queue-drain batch by a shard writer.",
    },
    Probe {
        name: "serve.drain.depth",
        kind: ProbeKind::Histogram,
        help: "Queue depth observed at the start of each drain batch.",
    },
    Probe {
        name: "serve.epoch",
        kind: ProbeKind::Counter,
        help: "Maintenance epochs (best-response quanta) completed.",
    },
    Probe {
        name: "serve.epoch.moves",
        kind: ProbeKind::Counter,
        help: "Placement moves applied by maintenance epochs in total.",
    },
    Probe {
        name: "serve.join.admitted",
        kind: ProbeKind::Counter,
        help: "Join requests admitted with a cache placement.",
    },
    Probe {
        name: "serve.join.rejected",
        kind: ProbeKind::Counter,
        help: "Join requests refused (no feasible placement).",
    },
    Probe {
        name: "serve.leave",
        kind: ProbeKind::Counter,
        help: "Leave requests applied (provider departed the market).",
    },
    Probe {
        name: "serve.publish.ns",
        kind: ProbeKind::Histogram,
        help: "View rebuild-and-publish latency (single-shard daemon).",
    },
    // per-shard publish latencies (shard index beyond s3 is
    // runtime-constructed but follows the same pattern; `obsreport`
    // and `/metrics` fold all of them back into one combined view)
    Probe {
        name: "serve.publish.s0.ns",
        kind: ProbeKind::Histogram,
        help: "View rebuild-and-publish latency on shard 0.",
    },
    Probe {
        name: "serve.publish.s1.ns",
        kind: ProbeKind::Histogram,
        help: "View rebuild-and-publish latency on shard 1.",
    },
    Probe {
        name: "serve.publish.s2.ns",
        kind: ProbeKind::Histogram,
        help: "View rebuild-and-publish latency on shard 2.",
    },
    Probe {
        name: "serve.publish.s3.ns",
        kind: ProbeKind::Histogram,
        help: "View rebuild-and-publish latency on shard 3.",
    },
    Probe {
        name: "serve.quantum.moves",
        kind: ProbeKind::Histogram,
        help: "Moves applied per preemptible maintenance quantum.",
    },
    Probe {
        name: "serve.queue.depth",
        kind: ProbeKind::Gauge,
        help: "Writer-queue depth sampled at drain time (per shard seq).",
    },
    Probe {
        name: "serve.recache",
        kind: ProbeKind::Counter,
        help: "Maintenance moves that cached or re-homed a provider (demand-driven re-caching).",
    },
    Probe {
        name: "serve.shard.migrate",
        kind: ProbeKind::Counter,
        help: "Cross-shard provider migrations committed.",
    },
    Probe {
        name: "serve.shard.rebalance.moves",
        kind: ProbeKind::Histogram,
        help: "Cross-shard rebalance moves proposed per maintenance pass.",
    },
    Probe {
        name: "serve.shard.route",
        kind: ProbeKind::Counter,
        help: "Write commands routed to a non-resident shard.",
    },
    Probe {
        name: "serve.update",
        kind: ProbeKind::Counter,
        help: "Update requests applied (demand re-declared).",
    },
    Probe {
        name: "serve.update.evicted",
        kind: ProbeKind::Counter,
        help: "Providers evicted because an update no longer fits.",
    },
    // discrete-event simulator (crates/sim)
    Probe {
        name: "sim.event_loop",
        kind: ProbeKind::Span,
        help: "Wall time of one simulator event-loop run.",
    },
    Probe {
        name: "sim.events",
        kind: ProbeKind::Counter,
        help: "Discrete events processed by the simulator.",
    },
    Probe {
        name: "sim.request_latency_us",
        kind: ProbeKind::Histogram,
        help: "End-to-end simulated request latency (microseconds).",
    },
];

/// `true` if `name` is a registered probe name.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    lookup(name).is_some()
}

/// The registry entry for `name`, if registered.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static Probe> {
    REGISTRY
        .binary_search_by(|p| p.name.cmp(name))
        .ok()
        .map(|i| &REGISTRY[i])
}

/// Renders the registry as the markdown metrics catalog.
///
/// This is the single source of truth behind `docs/METRICS.md`:
/// `cargo xtask metrics-doc` regenerates the file from this function
/// (via `obsreport --catalog`), and the `metrics_doc` sync test fails
/// if the checked-in copy drifts from the registry.
#[must_use]
pub fn catalog_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Metrics catalog\n\n");
    out.push_str(
        "<!-- GENERATED FILE — do not edit. Regenerate with `cargo xtask metrics-doc`. -->\n\n",
    );
    out.push_str(
        "Every probe the workspace can emit through `mec-obs`, generated from\n\
         `mec_obs::probes::REGISTRY` (the authoritative list; `cargo xtask analyze`\n\
         rejects emit sites that use unregistered names). Builds without the\n\
         `mec-obs/enabled` feature compile every probe away to a no-op.\n\n",
    );
    out.push_str(
        "Kinds: **counter** — monotonic cumulative count; **histogram** — value\n\
         distribution (log-bucketed; `.ns`/`_us` suffixes give the unit);\n\
         **span** — timed section, aggregated as a nanosecond histogram;\n\
         **gauge** — sampled instantaneous value.\n\n",
    );
    out.push_str(
        "Readers: `obsreport` folds JSONL traces offline; a daemon started with\n\
         `--admin-port` serves the live cumulative state at `GET /metrics` in\n\
         Prometheus exposition format (see [OPERATIONS.md](../OPERATIONS.md)).\n\n",
    );
    let mut section = "";
    for p in REGISTRY {
        let subsystem = p.name.split('.').next().unwrap_or(p.name);
        if subsystem != section {
            section = subsystem;
            out.push_str(&format!("\n## `{subsystem}.*`\n\n"));
            out.push_str("| probe | kind | description |\n|---|---|---|\n");
        }
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            p.name,
            p.kind.label(),
            p.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in REGISTRY.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "registry out of order at {:?} / {:?}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert!(is_registered("serve.epoch"));
        assert!(is_registered("appro.total"));
        assert!(!is_registered("serve.epochs"));
        assert!(!is_registered(""));
        assert_eq!(lookup("serve.epoch").unwrap().kind, ProbeKind::Counter);
        assert_eq!(
            lookup("serve.publish.ns").unwrap().kind,
            ProbeKind::Histogram
        );
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn every_probe_has_help() {
        for p in REGISTRY {
            assert!(
                !p.help.trim().is_empty() && p.help.ends_with('.'),
                "probe {} needs a one-line description ending in a period",
                p.name
            );
        }
    }

    #[test]
    fn catalog_covers_every_probe() {
        let doc = catalog_markdown();
        for p in REGISTRY {
            assert!(
                doc.contains(&format!("| `{}` |", p.name)),
                "catalog missing {}",
                p.name
            );
        }
        assert!(doc.contains("# Metrics catalog"));
        assert!(doc.contains("GENERATED FILE"));
    }
}
