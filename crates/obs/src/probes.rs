//! The probe-name registry: every counter, histogram, gauge, and span
//! name the workspace emits through [`crate`] (`mec-obs`).
//!
//! Probe names are stringly typed at the emit site — `counter_add`,
//! `record`, `span`, and friends all take `&str` — which makes a typo'd
//! or renamed-on-one-side-only probe a silent data loss: the writer
//! emits under one name, the dashboard or `obsreport` reader aggregates
//! under another, and nothing fails. This registry closes the loop. It
//! is the single source of truth for which names exist, and the
//! `probes` rule in `cargo xtask analyze` checks every *literal* probe
//! name at every emit site in the workspace against it, so an
//! unregistered name fails the build instead of vanishing from the
//! report.
//!
//! Names constructed at runtime (formatted or table-driven, like the
//! `marketload.*.ns` mirror loop in `mec-serve`'s load generator) are
//! invisible to that static check; they are registered here anyway so
//! the inventory stays complete for human readers and for `obsreport`.
//!
//! Naming convention: `<subsystem>.<event>[.<qualifier>]`, lowercase,
//! dot-separated; duration histograms carry a unit suffix (`.ns`,
//! `_us`). Keep the list sorted.
//!
//! When adding a probe: pick the name, emit it, and add it here in the
//! same change — `cargo xtask analyze` holds you to it.

/// Every probe name the workspace may emit, sorted lexicographically.
pub const REGISTRY: &[&str] = &[
    // approximation pipeline (crates/core appro solver)
    "appro.gap_solve",
    "appro.merge",
    "appro.polish",
    "appro.pricing",
    "appro.repair",
    "appro.runs",
    "appro.split",
    "appro.total",
    "appro.virtual_slots",
    // market dynamics and local search (crates/core)
    "core.dynamics.moves_applied",
    "core.dynamics.moves_attempted",
    "core.dynamics.potential",
    "core.dynamics.rounds",
    "core.dynamics.run",
    "core.local_search.moves",
    "core.local_search.run",
    // GAP rounding (crates/gap)
    "gap.lp_relax",
    "gap.round",
    "gap.rounding_slots",
    // LP solver (crates/lp)
    "lp.pivots",
    "lp.refactorizations",
    "lp.revised.solve",
    "lp.revised.solves",
    // load generator (crates/serve load harness; the `.ns` histograms
    // are emitted through a table, i.e. runtime-constructed)
    "marketload.join.ns",
    "marketload.leave.ns",
    "marketload.query.ns",
    "marketload.rejected",
    "marketload.update.ns",
    // serve daemon data plane (crates/serve)
    "serve.drain.batch",
    "serve.drain.depth",
    "serve.epoch",
    "serve.epoch.moves",
    "serve.join.admitted",
    "serve.join.rejected",
    "serve.leave",
    "serve.publish.ns",
    // per-shard publish latencies (shard index beyond s3 is
    // runtime-constructed but follows the same pattern; `obsreport`
    // folds all of them back into one combined view)
    "serve.publish.s0.ns",
    "serve.publish.s1.ns",
    "serve.publish.s2.ns",
    "serve.publish.s3.ns",
    "serve.quantum.moves",
    "serve.queue.depth",
    "serve.shard.migrate",
    "serve.shard.rebalance.moves",
    "serve.shard.route",
    "serve.update",
    "serve.update.evicted",
    // discrete-event simulator (crates/sim)
    "sim.event_loop",
    "sim.events",
    "sim.request_latency_us",
];

/// `true` if `name` is a registered probe name.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    REGISTRY.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in REGISTRY.windows(2) {
            assert!(w[0] < w[1], "registry out of order at {:?}", w);
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert!(is_registered("serve.epoch"));
        assert!(is_registered("appro.total"));
        assert!(!is_registered("serve.epochs"));
        assert!(!is_registered(""));
    }
}
