//! Prometheus text-exposition rendering of a live probe [`Summary`].
//!
//! This is the read path behind `mec-serve`'s `GET /metrics` admin
//! endpoint: take one cumulative snapshot of the in-process registry
//! ([`crate::summary`], a single lock acquisition plus bounded clones)
//! and render it in [Prometheus exposition format, version 0.0.4]:
//!
//! * **counters** render as `# TYPE <name> counter` with the cumulative
//!   total;
//! * **histograms** (including span durations, which aggregate under
//!   their span name) render as `# TYPE <name> summary` — quantile
//!   series at 0.5 / 0.95 / 0.99 plus `_sum` and `_count`;
//! * per-shard histograms (`serve.publish.s<k>.ns`, the same convention
//!   [`crate::report::shard_base`] folds offline) render under their
//!   base name with a `shard="k"` label, plus one unlabeled aggregate
//!   series merged *exactly* from the shard histograms — unlike the
//!   count-weighted approximation in [`crate::report::Report::shard_folds`],
//!   the live path has the raw buckets and merges them losslessly.
//!
//! Every probe registered in [`crate::probes::REGISTRY`] with counter or
//! histogram/span kind appears in the output even before its first
//! emission (counters at 0, summaries with `_count 0`), so a scrape
//! always exposes the full inventory and dashboards can be built before
//! traffic arrives. Gauge-kind probes stream to the JSONL sink only and
//! are not part of the cumulative registry, so they do not appear here
//! (`serve.queue.depth` is available live on the `/shards` endpoint).
//!
//! Metric names are sanitized to the Prometheus grammar (every byte
//! outside `[a-zA-Z0-9_:]` becomes `_`, so `serve.publish.ns` exports
//! as `serve_publish_ns`); label values are escaped per the format
//! specification.
//!
//! [Prometheus exposition format, version 0.0.4]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::probes::{self, ProbeKind};
use crate::report::shard_base;
use crate::Summary;

/// Quantiles exported per histogram/span probe.
const QUANTILES: &[(&str, f64)] = &[("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)];

/// Renders `summary` as Prometheus exposition text (version 0.0.4).
///
/// Deterministic: output blocks are ordered by exported metric name, and
/// per-shard series within a block by shard index. See the module docs
/// for the mapping rules.
///
/// # Examples
///
/// ```
/// let mut summary = mec_obs::Summary::default();
/// summary.counters.push(("serve.join.admitted".into(), 7));
/// let text = mec_obs::prom::render(&summary);
/// assert!(text.contains("# TYPE serve_join_admitted counter"));
/// assert!(text.contains("serve_join_admitted 7"));
/// ```
#[must_use]
pub fn render(summary: &Summary) -> String {
    // Start from the registry inventory (zero-filled), then overlay the
    // live snapshot. Unregistered names that show up live (doc examples,
    // runtime-constructed shard indices past s3) are still exported.
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    for p in probes::REGISTRY {
        match p.kind {
            ProbeKind::Counter => {
                counters.insert(p.name.to_string(), 0);
            }
            ProbeKind::Histogram | ProbeKind::Span => {
                hists.insert(p.name.to_string(), Histogram::new());
            }
            ProbeKind::Gauge => {} // sink-only; see module docs
        }
    }
    for (name, v) in &summary.counters {
        counters.insert(name.clone(), *v);
    }
    for (name, h) in &summary.hists {
        hists.insert(name.clone(), h.clone());
    }

    let mut out = String::new();
    for (name, v) in &counters {
        let metric = sanitize(name);
        header(&mut out, &metric, help_for(name), "counter");
        out.push_str(&format!("{metric} {v}\n"));
    }

    // Group per-shard histograms under their base name; everything else
    // is a one-series block of its own.
    let mut blocks: BTreeMap<String, Vec<(Option<String>, &Histogram)>> = BTreeMap::new();
    for (name, h) in &hists {
        match shard_split(name) {
            Some((base, shard)) => blocks.entry(base).or_default().push((Some(shard), h)),
            None => blocks.entry(name.clone()).or_default().push((None, h)),
        }
    }
    for (base, mut series) in blocks {
        let metric = sanitize(&base);
        header(&mut out, &metric, help_for(&base), "summary");
        series.sort_by(|a, b| a.0.cmp(&b.0));
        // The unlabeled series is the exact bucket-level merge of every
        // shard plus anything recorded directly under the base name (a
        // single-shard daemon emits `serve.publish.ns` itself), so one
        // aggregate covers both layouts without duplicate series.
        let mut merged = Histogram::new();
        for (shard, h) in &series {
            merged.merge(h);
            if let Some(k) = shard {
                let label = format!("shard=\"{}\"", escape_label(k));
                write_summary_series(&mut out, &metric, Some(&label), h);
            }
        }
        write_summary_series(&mut out, &metric, None, &merged);
    }
    out
}

/// Writes the quantile / `_sum` / `_count` series of one histogram.
fn write_summary_series(out: &mut String, metric: &str, label: Option<&str>, h: &Histogram) {
    let with = |extra: &str| match (label, extra.is_empty()) {
        (None, true) => String::new(),
        (None, false) => format!("{{{extra}}}"),
        (Some(l), true) => format!("{{{l}}}"),
        (Some(l), false) => format!("{{{l},{extra}}}"),
    };
    if !h.is_empty() {
        for (q, v) in QUANTILES {
            out.push_str(&format!(
                "{metric}{} {}\n",
                with(&format!("quantile=\"{q}\"")),
                h.percentile(*v)
            ));
        }
    }
    out.push_str(&format!("{metric}_sum{} {}\n", with(""), h.sum()));
    out.push_str(&format!("{metric}_count{} {}\n", with(""), h.count()));
}

/// Writes the `# HELP` / `# TYPE` preamble of one metric block.
fn header(out: &mut String, metric: &str, help: &str, ty: &str) {
    out.push_str(&format!("# HELP {metric} {}\n", escape_help(help)));
    out.push_str(&format!("# TYPE {metric} {ty}\n"));
}

/// Registered help text for `name`, falling back for runtime-constructed
/// or example-only names.
fn help_for(name: &str) -> &'static str {
    probes::lookup(name)
        .map(|p| p.help)
        .unwrap_or("Probe not in mec_obs::probes::REGISTRY (runtime-constructed name).")
}

/// `serve.publish.s2.ns` → `Some(("serve.publish.ns", "2"))`.
fn shard_split(name: &str) -> Option<(String, String)> {
    let base = shard_base(name)?;
    let segs: Vec<&str> = name.split('.').collect();
    let shard = segs[segs.len() - 2].strip_prefix('s')?;
    Some((base, shard.to_string()))
}

/// Maps a probe name onto the Prometheus metric-name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .is_none_or(|c| !(c.is_ascii_alphabetic() || c == '_' || c == ':'))
    {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text per the exposition format (`\\`, `\n`).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        let mut s = Summary::default();
        s.counters.push(("serve.join.admitted".into(), 41));
        s.counters.push(("weird name/with chars".into(), 2));
        let mut h = Histogram::new();
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        s.hists.push(("serve.publish.s0.ns".into(), h.clone()));
        let mut h1 = Histogram::new();
        h1.record(1_000_000);
        s.hists.push(("serve.publish.s1.ns".into(), h1));
        s.hists.push(("serve.drain.batch".into(), h));
        s
    }

    #[test]
    fn counters_render_with_help_and_type() {
        let text = render(&sample());
        assert!(text.contains("# HELP serve_join_admitted Join requests admitted"));
        assert!(text.contains("# TYPE serve_join_admitted counter"));
        assert!(text.contains("serve_join_admitted 41"));
    }

    #[test]
    fn registered_probes_are_zero_filled() {
        let text = render(&Summary::default());
        // Never emitted, still inventoried.
        assert!(text.contains("serve_join_rejected 0"));
        assert!(text.contains("appro_total_sum 0"));
        assert!(text.contains("appro_total_count 0"));
        for p in probes::REGISTRY {
            if p.kind != ProbeKind::Gauge {
                let metric = sanitize(&shard_base(p.name).unwrap_or_else(|| p.name.to_string()));
                assert!(
                    text.contains(&format!("# TYPE {metric} ")),
                    "missing TYPE for {}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn shard_series_carry_labels_and_exact_aggregate() {
        let text = render(&sample());
        assert!(text.contains("serve_publish_ns_count{shard=\"0\"} 4"));
        assert!(text.contains("serve_publish_ns_count{shard=\"1\"} 1"));
        assert!(text.contains("serve_publish_ns{shard=\"0\",quantile=\"0.5\"}"));
        // Unlabeled aggregate merges every shard exactly: 4 + 1 samples.
        assert!(text.contains("serve_publish_ns_count 5"));
        assert!(text.contains(&format!(
            "serve_publish_ns_sum {}",
            100 + 200 + 400 + 800 + 1_000_000
        )));
    }

    #[test]
    fn empty_histograms_skip_quantiles_but_keep_sum_count() {
        let text = render(&Summary::default());
        assert!(text.contains("serve_drain_batch_count 0"));
        assert!(!text.contains("serve_drain_batch{quantile"));
    }

    #[test]
    fn names_are_sanitized_and_unregistered_names_still_export() {
        let text = render(&sample());
        assert!(text.contains("weird_name_with_chars 2"));
        assert!(text.contains("# HELP weird_name_with_chars Probe not in"));
    }

    #[test]
    fn every_line_is_well_formed() {
        let text = render(&sample());
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP ")
                    || line.starts_with("# TYPE ")
                    || line
                        .split_whitespace()
                        .nth(1)
                        .is_some_and(|v| v.parse::<f64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn help_and_type_precede_samples_once_per_metric() {
        let text = render(&sample());
        let mut seen_type: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(!seen_type.contains(&name), "duplicate TYPE for {name}");
                seen_type.push(name);
            }
        }
        assert!(seen_type.len() > 10);
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }
}
