//! The JSONL wire format for observability events.
//!
//! Every event is one JSON object per line. The encoder and the parser are
//! hand-rolled (no serde) and always compiled — `obsreport` must be able to
//! read traces regardless of whether the reading binary was built with the
//! `enabled` feature. The format round-trips exactly:
//!
//! * `u64` fields are written as JSON integers and parsed with
//!   [`str::parse`], so the full 64-bit range survives (no `f64` detour);
//! * finite `f64` values use Rust's shortest round-trip `Display`;
//!   non-finite values are written as the JSON strings `"NaN"`, `"inf"`
//!   and `"-inf"` (plain JSON has no spelling for them);
//! * names are escaped per JSON string rules (`\"`, `\\`, `\u00XX` for
//!   control characters) and may contain arbitrary Unicode.
//!
//! Line shapes:
//!
//! ```text
//! {"type":"span","name":"appro.merge","start_ns":12034,"dur_ns":88211}
//! {"type":"counter","name":"lp.pivots","value":4181}
//! {"type":"gauge","name":"core.dynamics.potential","seq":3,"value":10571.25}
//! {"type":"hist","name":"sim.request_latency_us","count":5000,"p50":181,"p95":402,"p99":640,"max":1201}
//! ```

use std::fmt;

/// One observability event, as written to / read from a JSONL trace.
///
/// # Examples
///
/// ```
/// use mec_obs::wire::{encode, parse, Event};
///
/// let ev = Event::Counter { name: "lp.pivots".into(), value: 4181 };
/// let line = encode(&ev);
/// assert_eq!(line, r#"{"type":"counter","name":"lp.pivots","value":4181}"#);
/// assert_eq!(parse(&line).unwrap(), ev);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A completed timed section. `start_ns` is relative to an arbitrary
    /// per-process origin; `dur_ns` is the wall-clock duration.
    Span {
        /// Span name, e.g. `appro.gap_solve`.
        name: String,
        /// Start offset in nanoseconds since the process trace origin.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A monotonic counter snapshot (cumulative total at emission time).
    Counter {
        /// Counter name, e.g. `lp.pivots`.
        name: String,
        /// Cumulative value.
        value: u64,
    },
    /// A sampled scalar in a series, e.g. the potential function per round.
    Gauge {
        /// Gauge name, e.g. `core.dynamics.potential`.
        name: String,
        /// Sample index within the series (round number, event count, ...).
        seq: u64,
        /// Sampled value.
        value: f64,
    },
    /// A histogram snapshot (cumulative at emission time). Quantiles carry
    /// the bucketing error of [`crate::Histogram`]; `max` is exact.
    Hist {
        /// Histogram name; by convention the suffix names the unit.
        name: String,
        /// Number of recorded values.
        count: u64,
        /// Median.
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
        /// Exact maximum.
        max: u64,
    },
}

/// Encodes an event as one JSON line (no trailing newline).
pub fn encode(ev: &Event) -> String {
    let mut s = String::with_capacity(64);
    match ev {
        Event::Span {
            name,
            start_ns,
            dur_ns,
        } => {
            s.push_str("{\"type\":\"span\",\"name\":");
            push_json_string(&mut s, name);
            s.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"));
        }
        Event::Counter { name, value } => {
            s.push_str("{\"type\":\"counter\",\"name\":");
            push_json_string(&mut s, name);
            s.push_str(&format!(",\"value\":{value}}}"));
        }
        Event::Gauge { name, seq, value } => {
            s.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_string(&mut s, name);
            s.push_str(&format!(",\"seq\":{seq},\"value\":"));
            push_json_f64(&mut s, *value);
            s.push('}');
        }
        Event::Hist {
            name,
            count,
            p50,
            p95,
            p99,
            max,
        } => {
            s.push_str("{\"type\":\"hist\",\"name\":");
            push_json_string(&mut s, name);
            s.push_str(&format!(
                ",\"count\":{count},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{max}}}"
            ));
        }
    }
    s
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        // Rust's Display for f64 is the shortest string that parses back to
        // the same value, so finite gauges round-trip bit-exactly.
        out.push_str(&format!("{v}"));
    }
}

/// Error describing why a line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSONL line back into an [`Event`].
pub fn parse(line: &str) -> Result<Event, ParseError> {
    let fields = parse_object(line)?;
    let ty = get_str(&fields, "type")?;
    let name = get_str(&fields, "name")?.to_string();
    match ty {
        "span" => Ok(Event::Span {
            name,
            start_ns: get_u64(&fields, "start_ns")?,
            dur_ns: get_u64(&fields, "dur_ns")?,
        }),
        "counter" => Ok(Event::Counter {
            name,
            value: get_u64(&fields, "value")?,
        }),
        "gauge" => Ok(Event::Gauge {
            name,
            seq: get_u64(&fields, "seq")?,
            value: get_f64(&fields, "value")?,
        }),
        "hist" => Ok(Event::Hist {
            name,
            count: get_u64(&fields, "count")?,
            p50: get_u64(&fields, "p50")?,
            p95: get_u64(&fields, "p95")?,
            p99: get_u64(&fields, "p99")?,
            max: get_u64(&fields, "max")?,
        }),
        other => Err(ParseError::new(format!("unknown event type `{other}`"))),
    }
}

/// A raw field value: a decoded string or the unparsed number token.
enum Token {
    Str(String),
    Num(String),
}

fn get<'a>(fields: &'a [(String, Token)], key: &str) -> Result<&'a Token, ParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::new(format!("missing field `{key}`")))
}

fn get_str<'a>(fields: &'a [(String, Token)], key: &str) -> Result<&'a str, ParseError> {
    match get(fields, key)? {
        Token::Str(s) => Ok(s),
        Token::Num(_) => Err(ParseError::new(format!("field `{key}` is not a string"))),
    }
}

fn get_u64(fields: &[(String, Token)], key: &str) -> Result<u64, ParseError> {
    match get(fields, key)? {
        Token::Num(n) => n
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad integer `{n}`"))),
        Token::Str(_) => Err(ParseError::new(format!("field `{key}` is not a number"))),
    }
}

fn get_f64(fields: &[(String, Token)], key: &str) -> Result<f64, ParseError> {
    match get(fields, key)? {
        Token::Num(n) => n
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad float `{n}`"))),
        // Non-finite values travel as strings; f64::from_str accepts the
        // spellings the encoder produces ("NaN", "inf", "-inf").
        Token::Str(s) => s
            .parse()
            .map_err(|_| ParseError::new(format!("field `{key}`: bad float `{s}`"))),
    }
}

/// Minimal parser for one flat JSON object: string keys, values that are
/// strings or numbers. Nested containers are rejected (the wire format
/// never produces them).
fn parse_object(line: &str) -> Result<Vec<(String, Token)>, ParseError> {
    let mut chars = line.trim().chars().peekable();
    if chars.next() != Some('{') {
        return Err(ParseError::new("expected `{`"));
    }
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ => return Err(ParseError::new("expected field name")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(ParseError::new("expected `:`"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Token::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Token::Num(num)
            }
            _ => return Err(ParseError::new("expected string or number value")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err(ParseError::new("expected `,` or `}`")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(ParseError::new("trailing characters after object"));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError::new("expected `\"`"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(ParseError::new("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| ParseError::new("bad \\u escape"))?;
                        code = code * 16 + d;
                    }
                    let c = char::from_u32(code)
                        .ok_or_else(|| ParseError::new("\\u escape is not a scalar value"))?;
                    out.push(c);
                }
                _ => return Err(ParseError::new("unknown escape")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_hists_round_trip() {
        let evs = [
            Event::Span {
                name: "a.b".into(),
                start_ns: 0,
                dur_ns: u64::MAX,
            },
            Event::Hist {
                name: "h".into(),
                count: 5,
                p50: 1,
                p95: 2,
                p99: 3,
                max: u64::MAX,
            },
        ];
        for ev in evs {
            assert_eq!(parse(&encode(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn tricky_names_round_trip() {
        for name in [
            "",
            "q\"uo\\te",
            "new\nline\ttab",
            "\u{1}ctl",
            "uni\u{1F600}€",
        ] {
            let ev = Event::Counter {
                name: name.into(),
                value: 1,
            };
            assert_eq!(parse(&encode(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ev = Event::Gauge {
                name: "g".into(),
                seq: 0,
                value: v,
            };
            match parse(&encode(&ev)).unwrap() {
                Event::Gauge { value, .. } => {
                    if v.is_nan() {
                        assert!(value.is_nan());
                    } else {
                        assert_eq!(value.to_bits(), v.to_bits(), "v={v}");
                    }
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_error() {
        for line in [
            "",
            "{",
            "not json",
            r#"{"type":"span"}"#,
            r#"{"type":"mystery","name":"x"}"#,
            r#"{"type":"counter","name":"x","value":"oops"}"#,
            r#"{"type":"counter","name":"x","value":1} extra"#,
        ] {
            assert!(parse(line).is_err(), "line `{line}` should not parse");
        }
    }
}
