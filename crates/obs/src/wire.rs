//! The JSONL wire format for observability events.
//!
//! Every event is one JSON object per line. The encoder and the parser are
//! hand-rolled (no serde) and always compiled — `obsreport` must be able to
//! read traces regardless of whether the reading binary was built with the
//! `enabled` feature. The escaping and number rules live in the shared
//! [`crate::json`] module (one home for every JSONL format in the
//! workspace, including the `mec-serve` protocol), so the format
//! round-trips exactly: lossless `u64`, shortest round-trip `f64` with
//! `"NaN"`/`"inf"`/`"-inf"` spellings, JSON-escaped Unicode names.
//!
//! Line shapes:
//!
//! ```text
//! {"type":"span","name":"appro.merge","start_ns":12034,"dur_ns":88211}
//! {"type":"counter","name":"lp.pivots","value":4181}
//! {"type":"gauge","name":"core.dynamics.potential","seq":3,"value":10571.25}
//! {"type":"hist","name":"sim.request_latency_us","count":5000,"p50":181,"p95":402,"p99":640,"max":1201}
//! ```

use crate::json;

/// Parse failure for one trace line (shared with every JSONL format in
/// the workspace — see [`crate::json`]).
pub use crate::json::ParseError;

/// One observability event, as written to / read from a JSONL trace.
///
/// # Examples
///
/// ```
/// use mec_obs::wire::{encode, parse, Event};
///
/// let ev = Event::Counter { name: "lp.pivots".into(), value: 4181 };
/// let line = encode(&ev);
/// assert_eq!(line, r#"{"type":"counter","name":"lp.pivots","value":4181}"#);
/// assert_eq!(parse(&line).unwrap(), ev);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A completed timed section. `start_ns` is relative to an arbitrary
    /// per-process origin; `dur_ns` is the wall-clock duration.
    Span {
        /// Span name, e.g. `appro.gap_solve`.
        name: String,
        /// Start offset in nanoseconds since the process trace origin.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A monotonic counter snapshot (cumulative total at emission time).
    Counter {
        /// Counter name, e.g. `lp.pivots`.
        name: String,
        /// Cumulative value.
        value: u64,
    },
    /// A sampled scalar in a series, e.g. the potential function per round.
    Gauge {
        /// Gauge name, e.g. `core.dynamics.potential`.
        name: String,
        /// Sample index within the series (round number, event count, ...).
        seq: u64,
        /// Sampled value.
        value: f64,
    },
    /// A histogram snapshot (cumulative at emission time). Quantiles carry
    /// the bucketing error of [`crate::Histogram`]; `max` is exact.
    Hist {
        /// Histogram name; by convention the suffix names the unit.
        name: String,
        /// Number of recorded values.
        count: u64,
        /// Median.
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
        /// Exact maximum.
        max: u64,
    },
}

/// Encodes an event as one JSON line (no trailing newline).
pub fn encode(ev: &Event) -> String {
    let mut s = String::with_capacity(64);
    match ev {
        Event::Span {
            name,
            start_ns,
            dur_ns,
        } => {
            s.push_str("{\"type\":\"span\",\"name\":");
            json::push_string(&mut s, name);
            s.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"));
        }
        Event::Counter { name, value } => {
            s.push_str("{\"type\":\"counter\",\"name\":");
            json::push_string(&mut s, name);
            s.push_str(&format!(",\"value\":{value}}}"));
        }
        Event::Gauge { name, seq, value } => {
            s.push_str("{\"type\":\"gauge\",\"name\":");
            json::push_string(&mut s, name);
            s.push_str(&format!(",\"seq\":{seq},\"value\":"));
            json::push_f64(&mut s, *value);
            s.push('}');
        }
        Event::Hist {
            name,
            count,
            p50,
            p95,
            p99,
            max,
        } => {
            s.push_str("{\"type\":\"hist\",\"name\":");
            json::push_string(&mut s, name);
            s.push_str(&format!(
                ",\"count\":{count},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{max}}}"
            ));
        }
    }
    s
}

/// Parses one JSONL line back into an [`Event`].
pub fn parse(line: &str) -> Result<Event, ParseError> {
    let fields = json::parse_object(line)?;
    let ty = json::get_str(&fields, "type")?;
    let name = json::get_str(&fields, "name")?.to_string();
    match ty {
        "span" => Ok(Event::Span {
            name,
            start_ns: json::get_u64(&fields, "start_ns")?,
            dur_ns: json::get_u64(&fields, "dur_ns")?,
        }),
        "counter" => Ok(Event::Counter {
            name,
            value: json::get_u64(&fields, "value")?,
        }),
        "gauge" => Ok(Event::Gauge {
            name,
            seq: json::get_u64(&fields, "seq")?,
            value: json::get_f64(&fields, "value")?,
        }),
        "hist" => Ok(Event::Hist {
            name,
            count: json::get_u64(&fields, "count")?,
            p50: json::get_u64(&fields, "p50")?,
            p95: json::get_u64(&fields, "p95")?,
            p99: json::get_u64(&fields, "p99")?,
            max: json::get_u64(&fields, "max")?,
        }),
        other => Err(ParseError::new(format!("unknown event type `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_hists_round_trip() {
        let evs = [
            Event::Span {
                name: "a.b".into(),
                start_ns: 0,
                dur_ns: u64::MAX,
            },
            Event::Hist {
                name: "h".into(),
                count: 5,
                p50: 1,
                p95: 2,
                p99: 3,
                max: u64::MAX,
            },
        ];
        for ev in evs {
            assert_eq!(parse(&encode(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn tricky_names_round_trip() {
        for name in [
            "",
            "q\"uo\\te",
            "new\nline\ttab",
            "\u{1}ctl",
            "uni\u{1F600}€",
        ] {
            let ev = Event::Counter {
                name: name.into(),
                value: 1,
            };
            assert_eq!(parse(&encode(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ev = Event::Gauge {
                name: "g".into(),
                seq: 0,
                value: v,
            };
            match parse(&encode(&ev)).unwrap() {
                Event::Gauge { value, .. } => {
                    if v.is_nan() {
                        assert!(value.is_nan());
                    } else {
                        assert_eq!(value.to_bits(), v.to_bits(), "v={v}");
                    }
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_error() {
        for line in [
            "",
            "{",
            "not json",
            r#"{"type":"span"}"#,
            r#"{"type":"mystery","name":"x"}"#,
            r#"{"type":"counter","name":"x","value":"oops"}"#,
            r#"{"type":"counter","name":"x","value":1} extra"#,
        ] {
            assert!(parse(line).is_err(), "line `{line}` should not parse");
        }
    }
}
