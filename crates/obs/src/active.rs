//! Live probe implementations compiled when the `enabled` feature is on.
//!
//! All state lives in one process-wide registry behind a `Mutex`: counters,
//! histograms (span durations are recorded under their span name) and the
//! optional JSONL sink. Probes take the lock once per call; hot loops
//! should batch with [`record_many`] / one [`counter_add`] per phase, which
//! is how the workspace's instrumentation sites are written.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::hist::Histogram;
use crate::wire::{encode, Event};
use crate::Summary;

struct Registry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    sink: Option<Box<dyn Write + Send>>,
}

/// Fast path for "is anyone listening" checks; mirrors `sink.is_some()`.
static SINK_ON: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
                sink: None,
            })
        })
        .lock()
        // A probe that panicked mid-update can at worst leave a partially
        // bumped counter; keep observing rather than poisoning all probes.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Trace time origin; all span `start_ns` offsets are relative to this.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn emit(reg: &mut Registry, ev: &Event) {
    if let Some(sink) = reg.sink.as_mut() {
        let mut line = encode(ev);
        line.push('\n');
        if sink.write_all(line.as_bytes()).is_err() {
            // A broken sink (full disk, closed pipe) must not take the
            // workload down; drop it and keep aggregating in-process.
            reg.sink = None;
            SINK_ON.store(false, Ordering::Release);
        }
    }
}

/// Whether this build carries live instrumentation. Always `true` here;
/// `const` so call sites can be folded away at compile time.
#[inline(always)]
pub const fn enabled() -> bool {
    true
}

/// Whether a JSONL sink is currently installed. Cheap (one atomic load);
/// use it to gate instrumentation whose *inputs* are expensive to compute,
/// e.g. evaluating the potential function once per round.
#[inline]
pub fn sink_installed() -> bool {
    SINK_ON.load(Ordering::Acquire)
}

/// Installs a JSONL sink writing to the file at `path` (truncating it).
/// Replaces any previously installed sink without flushing it.
pub fn install_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs a JSONL sink writing to an arbitrary writer (tests use an
/// in-memory buffer). Replaces any previously installed sink.
pub fn install_writer(writer: Box<dyn Write + Send>) {
    origin(); // pin the trace time origin no later than the first event
    let mut reg = registry();
    reg.sink = Some(writer);
    SINK_ON.store(true, Ordering::Release);
}

/// Flushes snapshots ([`flush`]) and removes the sink.
pub fn shutdown() {
    let mut reg = registry();
    flush_locked(&mut reg);
    reg.sink = None;
    SINK_ON.store(false, Ordering::Release);
}

/// Adds `delta` to the monotonic counter `name`.
pub fn counter_add(name: &'static str, delta: u64) {
    let mut reg = registry();
    *reg.counters.entry(name).or_insert(0) += delta;
}

/// Samples the gauge series `name` at index `seq`. Gauges stream straight
/// to the sink (no in-process aggregation); without a sink this is a cheap
/// no-op, so callers computing expensive values should gate on
/// [`sink_installed`].
pub fn gauge(name: &'static str, seq: u64, value: f64) {
    if !sink_installed() {
        return;
    }
    let mut reg = registry();
    emit(
        &mut reg,
        &Event::Gauge {
            name: name.to_string(),
            seq,
            value,
        },
    );
}

/// Records one value into the histogram `name`.
pub fn record(name: &'static str, value: u64) {
    let mut reg = registry();
    reg.hists.entry(name).or_default().record(value);
}

/// Records a batch of values into the histogram `name`, taking the
/// registry lock once.
pub fn record_many(name: &'static str, values: &[u64]) {
    if values.is_empty() {
        return;
    }
    let mut reg = registry();
    let h = reg.hists.entry(name).or_default();
    for &v in values {
        h.record(v);
    }
}

/// Emits cumulative snapshots of every counter and histogram to the sink
/// (as `counter` / `hist` events) and flushes it. Snapshots are cumulative,
/// so a reader keeps the *last* line per name; flushing twice is harmless.
pub fn flush() {
    let mut reg = registry();
    flush_locked(&mut reg);
}

fn flush_locked(reg: &mut Registry) {
    if reg.sink.is_none() {
        return;
    }
    let counters: Vec<Event> = reg
        .counters
        .iter()
        .map(|(&name, &value)| Event::Counter {
            name: name.to_string(),
            value,
        })
        .collect();
    let hists: Vec<Event> = reg
        .hists
        .iter()
        .map(|(&name, h)| Event::Hist {
            name: name.to_string(),
            count: h.count(),
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            max: h.max(),
        })
        .collect();
    for ev in counters.iter().chain(hists.iter()) {
        emit(reg, ev);
    }
    if let Some(sink) = reg.sink.as_mut() {
        let _ = sink.flush();
    }
}

/// Snapshot of the registry: cumulative counters and histograms, sorted by
/// name. Does not reset anything.
pub fn summary() -> Summary {
    let reg = registry();
    Summary {
        counters: reg
            .counters
            .iter()
            .map(|(&n, &v)| (n.to_string(), v))
            .collect(),
        hists: reg
            .hists
            .iter()
            .map(|(&n, h)| (n.to_string(), h.clone()))
            .collect(),
    }
}

/// Clears all counters and histograms and drops any installed sink without
/// flushing it. Intended for tests that need a clean slate.
pub fn reset() {
    let mut reg = registry();
    reg.counters.clear();
    reg.hists.clear();
    reg.sink = None;
    SINK_ON.store(false, Ordering::Release);
}

/// Clears only the histograms (latency distributions), leaving counters
/// monotonic and any installed sink in place. Long-lived daemons expose
/// this through `POST /reset/histograms` so operators can re-baseline
/// tail latencies after a deploy or an incident without breaking
/// Prometheus counter semantics. Returns how many histograms were
/// dropped.
pub fn reset_histograms() -> usize {
    let mut reg = registry();
    let n = reg.hists.len();
    reg.hists.clear();
    n
}

/// RAII timer guard for a named span: created by [`span`], records the
/// elapsed time on drop (into the histogram `name` and, when a sink is
/// installed, as a `span` event).
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Starts timing a span; the returned guard records on drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    origin(); // make sure the origin predates `start`
    Span {
        name,
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = clamp_ns(self.start.elapsed().as_nanos());
        let start_ns = clamp_ns(
            self.start
                .checked_duration_since(origin())
                .unwrap_or_default()
                .as_nanos(),
        );
        let mut reg = registry();
        reg.hists.entry(self.name).or_default().record(dur_ns);
        if reg.sink.is_some() {
            emit(
                &mut reg,
                &Event::Span {
                    name: self.name.to_string(),
                    start_ns,
                    dur_ns,
                },
            );
        }
    }
}

fn clamp_ns(ns: u128) -> u64 {
    ns.min(u64::MAX as u128) as u64
}
