//! HDR-style fixed-bucket histogram with no dependencies.
//!
//! Values are `u64` in an arbitrary unit (the recording site's name carries
//! the unit by convention, e.g. `*.ns` or `*_us`). The bucket layout is the
//! classic log-linear scheme used by HdrHistogram:
//!
//! * values `0..16` land in one exact bucket each;
//! * larger values are bucketed by their most-significant bit (the
//!   magnitude) with 16 linear sub-buckets per magnitude, giving a
//!   guaranteed relative error of at most 1/16 (6.25 %) per recorded value;
//! * values at or above 2^40 (~18 minutes if the unit is nanoseconds) share
//!   one overflow bucket; the exact maximum is still tracked separately, so
//!   `max()` is always precise.
//!
//! The whole structure is a flat `[u64; 593]` plus four scalars — cheap to
//! clone, merge, and reset, and free of floating-point state.

/// Number of exact low-value buckets (values `0..LINEAR_CUTOFF`).
const LINEAR_CUTOFF: u64 = 16;
/// Linear sub-buckets per power-of-two magnitude.
const SUB_BUCKETS: usize = 16;
/// Highest most-significant-bit index that is still bucketed precisely.
/// Values with a higher MSB (>= 2^40) go to the overflow bucket.
const MAX_MSB: usize = 39;
/// Index of the overflow bucket (always the last slot).
const OVERFLOW: usize = (MAX_MSB - 3) * SUB_BUCKETS + SUB_BUCKETS;
/// Total bucket count: 16 exact + 36 magnitudes x 16 sub-buckets + overflow.
const N_BUCKETS: usize = OVERFLOW + 1;

/// Smallest value that lands in the overflow bucket.
pub const OVERFLOW_THRESHOLD: u64 = 1 << (MAX_MSB + 1);

/// Log-linear fixed-bucket histogram of `u64` values.
///
/// # Examples
///
/// ```
/// use mec_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.percentile(0.50);
/// // Bucketing guarantees at most 1/16 relative error.
/// assert!((p50 as f64 - 500.0).abs() <= 500.0 / 16.0 + 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Box<[u64; N_BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; N_BUCKETS]),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` in one update.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of values that landed in the overflow bucket (>= 2^40).
    pub fn overflow_count(&self) -> u64 {
        self.buckets[OVERFLOW]
    }

    /// Value at quantile `q` in `[0, 1]`, e.g. `0.5` for the median.
    ///
    /// The result is a bucket representative (midpoint), clamped into the
    /// exact `[min, max]` range, so `percentile(0.0)` and `percentile(1.0)`
    /// are exact and interior quantiles carry at most 1/16 relative error.
    /// Returns 0 when the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self.representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Discards all recorded values.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }

    fn index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        if msb > MAX_MSB {
            return OVERFLOW;
        }
        (msb - 3) * SUB_BUCKETS + ((value >> (msb - 4)) & 0xF) as usize
    }

    /// Midpoint of the bucket's value range; exact for the low buckets.
    fn representative(&self, idx: usize) -> u64 {
        if idx < LINEAR_CUTOFF as usize {
            return idx as u64;
        }
        if idx == OVERFLOW {
            // The overflow bucket has no upper bound; the exact max is the
            // only honest representative.
            return self.max;
        }
        let msb = idx / SUB_BUCKETS + 3;
        let sub = (idx % SUB_BUCKETS) as u64;
        let width = 1u64 << (msb - 4);
        (1u64 << msb) + sub * width + width / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_exact() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn low_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            // rank v+1 of 16 → quantile (v+1)/16 lands exactly on bucket v.
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(h.percentile(q), v, "quantile {q}");
        }
    }

    #[test]
    fn u64_max_lands_in_overflow_and_max_is_exact() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX);
    }

    #[test]
    fn overflow_boundary() {
        let mut h = Histogram::new();
        h.record(OVERFLOW_THRESHOLD - 1); // largest trackable value
        assert_eq!(h.overflow_count(), 0);
        h.record(OVERFLOW_THRESHOLD); // smallest overflow value
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), OVERFLOW_THRESHOLD);
    }

    #[test]
    fn relative_error_within_one_sixteenth() {
        let mut probe = vec![];
        let mut v = 16u64;
        while v < OVERFLOW_THRESHOLD / 3 {
            probe.push(v);
            probe.push(v + v / 3);
            v *= 5;
        }
        for &p in &probe {
            let mut h = Histogram::new();
            // Surround the probe so min/max clamping cannot mask the bucket
            // representative.
            h.record(1);
            h.record(p);
            h.record(OVERFLOW_THRESHOLD - 1);
            let got = h.percentile(0.5);
            let err = got.abs_diff(p) as f64;
            assert!(
                err <= p as f64 / 16.0 + 1.0,
                "value {p}: representative {got}, error {err}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 3u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 20);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= prev, "p{i} = {p} < previous {prev}");
            prev = p;
        }
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 5, 17, 900, 1 << 20, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 255, 1 << 35] {
            b.record_n(v, 3);
            all.record_n(v, 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.sum(), all.sum());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(a.percentile(q), all.percentile(q));
        }
    }

    #[test]
    fn reset_empties() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.99), 0);
    }
}
