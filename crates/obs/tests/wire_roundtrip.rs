//! Property test: every event the sink can emit parses back identically
//! from its JSONL encoding, including hostile names (quotes, backslashes,
//! control characters, non-ASCII) and full-range `u64` fields.

use mec_obs::wire::{encode, parse, Event};
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters chosen to stress the JSON escaper: quote, backslash,
/// newline/tab, a raw control byte, and multi-byte Unicode (incl. a
/// non-BMP scalar).
const NAME_CHARS: [char; 12] = [
    'a',
    'z',
    '.',
    '_',
    ' ',
    '"',
    '\\',
    '\n',
    '\t',
    '\u{1}',
    '€',
    '\u{1F600}',
];

fn name_from(ids: Vec<usize>) -> String {
    ids.into_iter().map(|i| NAME_CHARS[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn span_round_trips(
        ids in vec(0usize..NAME_CHARS.len(), 0..16),
        start_ns in 0u64..=u64::MAX,
        dur_ns in 0u64..=u64::MAX,
    ) {
        let ev = Event::Span { name: name_from(ids), start_ns, dur_ns };
        prop_assert_eq!(parse(&encode(&ev)).unwrap(), ev);
    }

    #[test]
    fn counter_round_trips(
        ids in vec(0usize..NAME_CHARS.len(), 0..16),
        value in 0u64..=u64::MAX,
    ) {
        let ev = Event::Counter { name: name_from(ids), value };
        prop_assert_eq!(parse(&encode(&ev)).unwrap(), ev);
    }

    #[test]
    fn gauge_round_trips_bit_exactly(
        ids in vec(0usize..NAME_CHARS.len(), 0..16),
        seq in 0u64..=u64::MAX,
        mantissa in -1.0e18f64..1.0e18,
        exp in -300i32..300,
    ) {
        let value = mantissa * (exp as f64).exp2();
        prop_assert!(value.is_finite());
        let expect_name = name_from(ids);
        let ev = Event::Gauge { name: expect_name.clone(), seq, value };
        match parse(&encode(&ev)).unwrap() {
            Event::Gauge { name, seq: s, value: v } => {
                prop_assert_eq!(name, expect_name);
                prop_assert_eq!(s, seq);
                // Bit-exact: Display(f64) is shortest-round-trip.
                prop_assert_eq!(v.to_bits(), value.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn hist_round_trips(
        ids in vec(0usize..NAME_CHARS.len(), 0..16),
        count in 0u64..=u64::MAX,
        p50 in 0u64..=u64::MAX,
        p95 in 0u64..=u64::MAX,
        p99 in 0u64..=u64::MAX,
        max in 0u64..=u64::MAX,
    ) {
        let ev = Event::Hist { name: name_from(ids), count, p50, p95, p99, max };
        prop_assert_eq!(parse(&encode(&ev)).unwrap(), ev);
    }
}
