//! Pins down the zero-cost contract of the default (obs-off) build: the
//! span guard is a ZST, `enabled()` is a compile-time `false`, and no
//! probe produces any event or registry state.

#![cfg(not(feature = "enabled"))]

use std::io::Write;
use std::sync::{Arc, Mutex};

/// `enabled()` must be const-evaluable so branches on it fold away.
const COMPILED_IN: bool = mec_obs::enabled();

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn span_guard_is_zero_sized() {
    assert_eq!(std::mem::size_of::<mec_obs::Span>(), 0);
    const { assert!(!COMPILED_IN) };
    assert!(!mec_obs::sink_installed());
}

#[test]
fn probes_produce_no_events_and_no_state() {
    let buf = SharedBuf::default();
    mec_obs::install_writer(Box::new(buf.clone()));
    assert!(!mec_obs::sink_installed());

    mec_obs::counter_add("noop.counter", 42);
    mec_obs::record("noop.hist", 7);
    mec_obs::record_many("noop.hist", &[1, 2, 3]);
    mec_obs::gauge("noop.gauge", 0, 1.5);
    {
        let _span = mec_obs::span("noop.span");
    }
    mec_obs::flush();
    mec_obs::shutdown();

    assert!(
        buf.0.lock().unwrap().is_empty(),
        "obs-off build wrote events to the sink"
    );
    let summary = mec_obs::summary();
    assert!(summary.counters.is_empty());
    assert!(summary.hists.is_empty());
}

#[test]
fn install_file_creates_nothing() {
    let path = std::env::temp_dir().join("mec-obs-noop-test-should-not-exist.jsonl");
    let _ = std::fs::remove_file(&path);
    mec_obs::install_file(&path).unwrap();
    assert!(
        !path.exists(),
        "obs-off install_file must not touch the filesystem"
    );
}
