//! Behavior of the live (obs-on) build: counters accumulate, spans record
//! and stream, flush emits cumulative snapshots.
//!
//! The registry is process-global, so every test serializes on one lock
//! and resets the registry before touching it.

#![cfg(feature = "enabled")]

use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

use mec_obs::{Event, Report};

fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn counters_accumulate_and_summary_reads_them() {
    let _guard = test_lock();
    mec_obs::reset();
    assert!(mec_obs::enabled());

    mec_obs::counter_add("t.counter", 2);
    mec_obs::counter_add("t.counter", 3);
    let summary = mec_obs::summary();
    assert_eq!(summary.counter("t.counter"), Some(5));
}

#[test]
fn spans_record_into_histogram_and_stream_to_sink() {
    let _guard = test_lock();
    mec_obs::reset();
    let buf = SharedBuf::default();
    mec_obs::install_writer(Box::new(buf.clone()));
    assert!(mec_obs::sink_installed());

    {
        let _span = mec_obs::span("t.span");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let summary = mec_obs::summary();
    let h = summary.hist("t.span").expect("span histogram missing");
    assert_eq!(h.count(), 1);
    assert!(h.max() >= 1_000_000, "1ms sleep measured {}ns", h.max());

    let line = buf.contents();
    match mec_obs::wire::parse(line.lines().next().unwrap()).unwrap() {
        Event::Span { name, dur_ns, .. } => {
            assert_eq!(name, "t.span");
            assert!(dur_ns >= 1_000_000);
        }
        other => panic!("expected span event, got {other:?}"),
    }
    mec_obs::reset();
}

#[test]
fn flush_emits_cumulative_snapshots() {
    let _guard = test_lock();
    mec_obs::reset();
    let buf = SharedBuf::default();
    mec_obs::install_writer(Box::new(buf.clone()));

    mec_obs::counter_add("t.flush_counter", 10);
    mec_obs::record_many("t.flush_hist", &[5, 6, 7]);
    mec_obs::flush();
    mec_obs::counter_add("t.flush_counter", 1);
    mec_obs::gauge("t.flush_gauge", 3, 2.5);
    mec_obs::shutdown();

    let report = Report::from_lines(buf.contents().as_bytes()).unwrap();
    assert_eq!(report.skipped, 0);
    // Two snapshots were emitted; the reader keeps the last (cumulative).
    assert_eq!(report.counters["t.flush_counter"], 11);
    let h = report.hists["t.flush_hist"];
    assert_eq!(h.count, 3);
    assert_eq!(h.max, 7);
    let g = report.gauges["t.flush_gauge"];
    assert_eq!(g.count, 1);
    assert!((g.last - 2.5).abs() < 1e-12);
    mec_obs::reset();
}

#[test]
fn gauges_without_sink_are_dropped() {
    let _guard = test_lock();
    mec_obs::reset();
    assert!(!mec_obs::sink_installed());
    mec_obs::gauge("t.orphan_gauge", 0, 1.0);
    // Nothing to assert beyond "did not panic": gauges are sink-only.
    let summary = mec_obs::summary();
    assert!(summary.counters.is_empty());
}
