//! Keeps `docs/METRICS.md` in lockstep with the probe registry: the
//! checked-in file must be, byte for byte, what
//! [`mec_obs::probes::catalog_markdown`] renders from
//! `mec_obs::probes::REGISTRY`. Regenerate with `cargo xtask metrics-doc`.

use mec_obs::probes::{catalog_markdown, ProbeKind, REGISTRY};

const METRICS_DOC: &str = include_str!("../../../docs/METRICS.md");

#[test]
fn metrics_doc_matches_probe_registry() {
    let canonical = catalog_markdown();
    assert!(
        METRICS_DOC == canonical,
        "docs/METRICS.md is out of sync with mec_obs::probes::REGISTRY.\n\
         Regenerate it with `cargo xtask metrics-doc`."
    );
}

#[test]
fn metrics_doc_names_every_probe() {
    for p in REGISTRY {
        assert!(
            METRICS_DOC.contains(&format!("`{}`", p.name)),
            "docs/METRICS.md is missing probe `{}` — regenerate with \
             `cargo xtask metrics-doc`",
            p.name
        );
        assert!(
            METRICS_DOC.contains(p.help),
            "docs/METRICS.md is missing the description of `{}` — regenerate \
             with `cargo xtask metrics-doc`",
            p.name
        );
    }
}

#[test]
fn metrics_doc_explains_every_kind_in_use() {
    for kind in [
        ProbeKind::Counter,
        ProbeKind::Histogram,
        ProbeKind::Span,
        ProbeKind::Gauge,
    ] {
        if REGISTRY.iter().any(|p| p.kind == kind) {
            assert!(
                METRICS_DOC.contains(&format!("**{}**", kind.label())),
                "docs/METRICS.md never explains the `{}` kind",
                kind.label()
            );
        }
    }
}
